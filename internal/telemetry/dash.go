package telemetry

import "net/http"

// The live dashboard: one embedded, dependency-free HTML page that polls
// /history, /skipmap, /health, /workload, and /adaptation and renders
// the adaptation story the paper tells in figures — the convergence
// curve (skip ratio and latency quantiles improving as the zonemaps
// learn the workload), a per-zone effectiveness heatmap, and the
// adaptation-ledger timeline (zone-lifecycle events with provenance plus
// per-column skip ROI). Everything is inline SVG drawn by vanilla JS, so
// the page works from a file:// save or an air-gapped host; there is no
// external CSS, JS, or font.

// handleDash serves the dashboard page.
func (s *Server) handleDash(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashHTML))
}

const dashHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>adskip dashboard</title>
<style>
:root {
  --surface: #fcfcfb;
  --ink: #1f1f1e;
  --ink-2: #5c5c58;
  --ink-3: #8a8a84;
  --grid: #e7e7e3;
  --series-1: #2a78d6; /* skip ratio / p50 */
  --series-2: #eb6834; /* p95 */
  --card: #ffffff;
  --edge: #e2e2de;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19;
    --ink: #ecece9;
    --ink-2: #a8a8a2;
    --ink-3: #7c7c76;
    --grid: #2e2e2c;
    --series-1: #3987e5;
    --series-2: #d95926;
    --card: #222221;
    --edge: #333331;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 20px 24px 40px;
  background: var(--surface); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 18px; font-weight: 600; margin: 0 0 2px; }
h2 { font-size: 13px; font-weight: 600; margin: 0 0 8px; color: var(--ink); }
.sub { color: var(--ink-2); font-size: 12px; margin-bottom: 18px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 18px; }
.tile {
  background: var(--card); border: 1px solid var(--edge); border-radius: 8px;
  padding: 10px 16px; min-width: 130px;
}
.tile .v { font-size: 22px; font-weight: 650; font-variant-numeric: tabular-nums; }
.tile .k { font-size: 11px; color: var(--ink-2); text-transform: uppercase; letter-spacing: .04em; }
.card {
  background: var(--card); border: 1px solid var(--edge); border-radius: 8px;
  padding: 14px 16px; margin-bottom: 16px; position: relative;
}
.legend { display: flex; gap: 16px; font-size: 12px; color: var(--ink-2); margin-bottom: 4px; }
.legend .sw { display: inline-block; width: 10px; height: 10px; border-radius: 2px; margin-right: 5px; vertical-align: -1px; }
svg text { fill: var(--ink-3); font: 11px system-ui, sans-serif; }
svg .axis { stroke: var(--grid); stroke-width: 1; }
.tip {
  position: absolute; pointer-events: none; display: none;
  background: var(--card); border: 1px solid var(--edge); border-radius: 6px;
  padding: 6px 10px; font-size: 12px; box-shadow: 0 2px 8px rgba(0,0,0,.15);
  white-space: nowrap; z-index: 2;
}
.tip b { font-variant-numeric: tabular-nums; font-weight: 600; }
.hm-row { display: flex; align-items: center; gap: 10px; margin: 6px 0; }
.hm-label { width: 150px; flex: none; font-size: 12px; color: var(--ink-2);
  overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
.hm-strip { display: flex; gap: 2px; flex: 1; height: 18px; }
.hm-strip div { border-radius: 2px; min-width: 1px; }
.hm-scale { display: flex; align-items: center; gap: 8px; font-size: 11px; color: var(--ink-2); margin-top: 10px; }
.hm-scale .bar { width: 120px; height: 8px; border-radius: 2px; }
details { margin-top: 8px; }
summary { cursor: pointer; font-size: 12px; color: var(--ink-2); }
table { border-collapse: collapse; font-size: 12px; margin-top: 8px; }
td, th { padding: 3px 10px 3px 0; text-align: right; font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 500; }
td:first-child, th:first-child { text-align: left; }
.err { color: var(--ink-2); font-size: 12px; }
.banner {
  display: none; border-radius: 8px; padding: 10px 16px; margin-bottom: 16px;
  font-size: 13px; font-weight: 600; border: 1px solid transparent;
}
.banner.warning { display: block; background: #fdf4e3; color: #8a5a00; border-color: #efd9a8; }
.banner.critical { display: block; background: #fbe9e7; color: #9b1c0f; border-color: #f0bcb5; }
@media (prefers-color-scheme: dark) {
  .banner.warning { background: #33270f; color: #eab84e; border-color: #57431a; }
  .banner.critical { background: #391512; color: #f0836f; border-color: #5c201a; }
}
.pill { display: inline-block; border-radius: 99px; padding: 1px 9px; font-size: 11px; font-weight: 600; }
.pill.ok { background: #e3f2e6; color: #1e6b2e; }
.pill.warning { background: #fdf4e3; color: #8a5a00; }
.pill.critical { background: #fbe9e7; color: #9b1c0f; }
@media (prefers-color-scheme: dark) {
  .pill.ok { background: #16301b; color: #6fcf85; }
  .pill.warning { background: #33270f; color: #eab84e; }
  .pill.critical { background: #391512; color: #f0836f; }
}
</style>
</head>
<body>
<h1>adskip — adaptation dashboard</h1>
<div class="sub" id="status">connecting&hellip;</div>

<div class="banner" id="alert-banner" role="alert"></div>

<div class="tiles">
  <div class="tile"><div class="v" id="t-queries">–</div><div class="k">queries</div></div>
  <div class="tile"><div class="v" id="t-skip">–</div><div class="k">skip ratio</div></div>
  <div class="tile"><div class="v" id="t-p95">–</div><div class="k">p95 latency</div></div>
  <div class="tile"><div class="v" id="t-events">–</div><div class="k">adaptation events</div></div>
</div>

<div class="card">
  <h2>Skip ratio — convergence</h2>
  <div id="skip-chart"></div>
  <div class="tip" id="skip-tip"></div>
</div>

<div class="card">
  <h2>Query latency</h2>
  <div class="legend">
    <span><span class="sw" style="background:var(--series-1)"></span>p50</span>
    <span><span class="sw" style="background:var(--series-2)"></span>p95</span>
  </div>
  <div id="lat-chart"></div>
  <div class="tip" id="lat-tip"></div>
</div>

<div class="card">
  <h2>Zone heatmap — prune hit ratio per zone</h2>
  <div class="legend" id="shard-picker" style="display:none">shard:
    <select id="shard-sel"><option value="">all</option></select>
  </div>
  <div id="heatmap"><div class="err">waiting for skipmap&hellip;</div></div>
  <div class="hm-scale">
    <span>0%</span>
    <div class="bar" id="hm-scalebar"></div>
    <span>100% of probes pruned</span>
  </div>
</div>

<div class="card">
  <h2>Hottest query templates</h2>
  <div id="workload"><div class="err">waiting for workload&hellip;</div></div>
</div>

<div class="card">
  <h2>Adaptation timeline — zone lifecycle &amp; skip ROI</h2>
  <div id="adaptation"><div class="err">waiting for adaptation ledger&hellip;</div></div>
</div>

<div class="card" id="health-card" style="display:none">
  <h2>Service objectives</h2>
  <div id="objectives"></div>
</div>

<div class="card">
  <h2>Latest sample</h2>
  <details open><summary>table view</summary><div id="latest"></div></details>
</div>

<script>
"use strict";
// Sequential blue ramp, light -> dark (magnitude encoding for the heatmap).
const RAMP = ["#cde2fb","#a7cbf4","#7fb0ea","#5a93dd","#3b76c9","#2459a4","#163f7d","#0d366b"];
function rampColor(t) {
  t = Math.max(0, Math.min(1, t));
  const x = t * (RAMP.length - 1), i = Math.min(RAMP.length - 2, Math.floor(x)), f = x - i;
  const a = RAMP[i], b = RAMP[i + 1];
  const ch = (h, o) => parseInt(h.slice(o, o + 2), 16);
  const mix = o => Math.round(ch(a, o) + (ch(b, o) - ch(a, o)) * f);
  return "rgb(" + mix(1) + "," + mix(3) + "," + mix(5) + ")";
}
document.getElementById("hm-scalebar").style.background =
  "linear-gradient(90deg," + RAMP.join(",") + ")";

const W = 860, H = 180, M = {l: 46, r: 12, t: 8, b: 22};
function cssVar(n) { return getComputedStyle(document.documentElement).getPropertyValue(n).trim(); }
function fmtDur(sec) {
  if (!isFinite(sec) || sec <= 0) return "0";
  if (sec < 1e-3) return (sec * 1e6).toFixed(0) + "µs";
  if (sec < 1) return (sec * 1e3).toFixed(2) + "ms";
  return sec.toFixed(2) + "s";
}
function fmtCount(n) {
  if (n >= 1e9) return (n / 1e9).toFixed(1) + "B";
  if (n >= 1e6) return (n / 1e6).toFixed(1) + "M";
  if (n >= 1e3) return (n / 1e3).toFixed(1) + "k";
  return String(n);
}
function fmtTime(iso) {
  const d = new Date(iso);
  return d.toLocaleTimeString(undefined, {hour12: false});
}

// lineChart renders one single-axis SVG line chart with a shared time
// domain, recessive grid, 2px series lines, and a crosshair + tooltip.
function lineChart(el, tipEl, samples, series, fmtY) {
  if (!samples.length) { el.innerHTML = '<div class="err">no samples yet</div>'; return; }
  const t0 = new Date(samples[0].time).getTime();
  const t1 = new Date(samples[samples.length - 1].time).getTime();
  const span = Math.max(1, t1 - t0);
  let ymax = 0;
  for (const s of samples) for (const sr of series) ymax = Math.max(ymax, sr.get(s));
  if (ymax <= 0) ymax = 1;
  ymax *= 1.08;
  const x = t => M.l + (W - M.l - M.r) * (new Date(t).getTime() - t0) / span;
  const y = v => H - M.b - (H - M.b - M.t) * (v / ymax);

  let g = "";
  const ticks = 4;
  for (let i = 0; i <= ticks; i++) {
    const v = ymax * i / ticks, yy = y(v);
    g += '<line class="axis" x1="' + M.l + '" x2="' + (W - M.r) + '" y1="' + yy + '" y2="' + yy + '"/>';
    g += '<text x="' + (M.l - 6) + '" y="' + (yy + 3) + '" text-anchor="end">' + fmtY(v) + "</text>";
  }
  const nt = Math.min(6, samples.length);
  for (let i = 0; i < nt; i++) {
    const s = samples[Math.floor(i * (samples.length - 1) / Math.max(1, nt - 1))];
    g += '<text x="' + x(s.time) + '" y="' + (H - 6) + '" text-anchor="middle">' + fmtTime(s.time) + "</text>";
  }
  for (const sr of series) {
    let d = "";
    for (let i = 0; i < samples.length; i++) {
      d += (i ? "L" : "M") + x(samples[i].time).toFixed(1) + " " + y(sr.get(samples[i])).toFixed(1);
    }
    g += '<path d="' + d + '" fill="none" stroke="' + sr.color + '" stroke-width="2" stroke-linejoin="round"/>';
  }
  g += '<line id="xh" class="axis" y1="' + M.t + '" y2="' + (H - M.b) + '" x1="-9" x2="-9" style="stroke:' + cssVar("--ink-3") + '"/>';
  el.innerHTML = '<svg viewBox="0 0 ' + W + " " + H + '" width="100%" role="img" aria-label="time series chart">' + g + "</svg>";

  const svg = el.querySelector("svg"), xh = el.querySelector("#xh");
  svg.onmousemove = ev => {
    const r = svg.getBoundingClientRect();
    const mx = (ev.clientX - r.left) * W / r.width;
    let best = 0, bd = Infinity;
    for (let i = 0; i < samples.length; i++) {
      const d = Math.abs(x(samples[i].time) - mx);
      if (d < bd) { bd = d; best = i; }
    }
    const s = samples[best], sx = x(s.time);
    xh.setAttribute("x1", sx); xh.setAttribute("x2", sx);
    let html = fmtTime(s.time);
    for (const sr of series) {
      html += '<br><span class="sw" style="display:inline-block;width:8px;height:8px;border-radius:2px;background:' +
        sr.color + ';margin-right:4px"></span>' + sr.name + " <b>" + fmtY(sr.get(s)) + "</b>";
    }
    const tip = tipEl;
    tip.innerHTML = html;
    tip.style.display = "block";
    const px = (ev.clientX - r.left), flip = px > r.width * 0.7;
    tip.style.left = (px + (flip ? -tip.offsetWidth - 12 : 14)) + "px";
    tip.style.top = (ev.clientY - r.top + 10) + "px";
  };
  svg.onmouseleave = () => { tipEl.style.display = "none"; xh.setAttribute("x1", -9); xh.setAttribute("x2", -9); };
}

// The shard picker narrows the heatmap to one shard of a sharded
// catalog; it stays hidden on unsharded databases.
let shardFilter = "";
function syncShardPicker(tables) {
  let max = 0;
  for (const t of tables || []) if ((t.shards || 0) > max) max = t.shards;
  const picker = document.getElementById("shard-picker");
  const sel = document.getElementById("shard-sel");
  if (!max) { picker.style.display = "none"; return; }
  picker.style.display = "";
  if (sel.options.length !== max + 1) {
    let opts = '<option value="">all</option>';
    for (let i = 1; i <= max; i++) opts += '<option value="' + i + '">' + i + "</option>";
    sel.innerHTML = opts;
    sel.value = shardFilter;
    sel.onchange = () => { shardFilter = sel.value; };
  }
}
function renderHeatmap(tables) {
  const el = document.getElementById("heatmap");
  syncShardPicker(tables);
  let html = "";
  for (const t of tables || []) {
    if (shardFilter && String(t.shard || "") !== shardFilter) continue;
    const label = t.table + (t.shard ? " [shard " + t.shard + "/" + t.shards + "]" : "");
    for (const c of t.columns || []) {
      const zones = c.zone_detail || [];
      if (!zones.length) continue;
      const total = Math.max(1, t.rows);
      let cells = "";
      for (const z of zones) {
        const probes = (z.hits || 0) + (z.misses || 0);
        const ratio = probes ? z.hits / probes : 0;
        const w = Math.max(0.2, 100 * (z.hi - z.lo) / total);
        cells += '<div style="flex:' + w.toFixed(3) + ' 1 0;background:' + rampColor(ratio) +
          '" title="' + label + "." + c.column + " rows [" + z.lo + "," + z.hi + ") min " + z.min +
          " max " + z.max + " — " + (100 * ratio).toFixed(0) + "% of " + probes + ' probes pruned"></div>';
      }
      html += '<div class="hm-row"><div class="hm-label" title="' + label + "." + c.column + '">' +
        label + "." + c.column + " · " + zones.length + (c.zones_truncated ? "+" + c.zones_truncated : "") +
        ' zones</div><div class="hm-strip">' + cells + "</div></div>";
    }
  }
  el.innerHTML = html || '<div class="err">no introspectable skippers (adaptive policy exposes zones)</div>';
}

// renderHealth paints the alert banner and the per-objective SLO panel
// from /health. The banner appears only while an objective is burning
// (warning or critical); the panel lists every declared objective with
// its state, current signal value, and burn rate per window.
function renderHealth(h) {
  const banner = document.getElementById("alert-banner");
  const card = document.getElementById("health-card");
  if (!h || !h.enabled) { banner.className = "banner"; card.style.display = "none"; return; }
  card.style.display = "";
  const firing = (h.objectives || []).filter(o => o.state !== "ok");
  if (h.status !== "ok") {
    banner.className = "banner " + h.status;
    banner.textContent = h.status.toUpperCase() + " — " +
      firing.map(o => o.name + " (" + o.signal + ")").join(", ") +
      " burning since " + fmtTime(h.since);
  } else {
    banner.className = "banner";
  }
  let html = "<table><tr><th>objective</th><th>signal</th><th>state</th><th>threshold</th>";
  const wins = (h.objectives[0] || {}).windows || [];
  for (const w of wins) html += "<th>burn " + w.window + "</th>";
  html += "<th>value</th></tr>";
  for (const o of h.objectives || []) {
    const isLat = o.signal.indexOf("latency") === 0;
    const fmtV = v => isLat ? fmtDur(v) : o.signal === "queue_depth" ? v.toFixed(0) : (100 * v).toFixed(1) + "%";
    html += "<tr><td>" + o.name + '</td><td>' + o.signal +
      '</td><td><span class="pill ' + o.state + '">' + o.state + "</span></td><td>" + fmtV(o.threshold) + "</td>";
    for (const w of o.windows || []) html += "<td>" + w.burn.toFixed(1) + "&times;</td>";
    const shortW = (o.windows || [])[0];
    html += "<td>" + (shortW && shortW.data_ticks ? fmtV(shortW.value) : "–") + "</td></tr>";
  }
  document.getElementById("objectives").innerHTML = html + "</table>";
}

// renderWorkload paints the per-template table from /workload: the
// top-10 templates by total execution time, with each template's share
// of the recorded CPU time.
function renderWorkload(w) {
  const el = document.getElementById("workload");
  const ts = (w && w.templates) || [];
  if (!ts.length) {
    el.innerHTML = '<div class="err">no query templates recorded yet</div>';
    return;
  }
  let total = 0, sharded = false;
  for (const t of ts) { total += t.total_seconds; if (t.shards_scanned || t.shards_pruned) sharded = true; }
  let html = "<table><tr><th>template</th><th>calls</th><th>errors</th><th>mean</th><th>p95</th><th>skip</th>" +
    (sharded ? "<th>shards</th>" : "") + "<th>cpu</th></tr>";
  for (const t of ts) {
    const cpu = total > 0 ? 100 * t.total_seconds / total : 0;
    const sc = (t.shards_scanned || 0) + (t.shards_pruned || 0);
    html += "<tr><td>" + t.fingerprint.replace(/&/g, "&amp;").replace(/</g, "&lt;") +
      "</td><td>" + fmtCount(t.calls) + "</td><td>" + fmtCount(t.errors) +
      "</td><td>" + fmtDur(t.mean_us / 1e6) + "</td><td>" + fmtDur(t.p95_us / 1e6) +
      "</td><td>" + (100 * t.skip_ratio).toFixed(1) + "%</td>" +
      (sharded ? "<td>" + (sc ? fmtCount(t.shards_pruned || 0) + "/" + fmtCount(sc) + " pruned" : "–") + "</td>" : "") +
      "<td>" + cpu.toFixed(1) + "%</td></tr>";
  }
  el.innerHTML = html + "</table>" +
    '<div class="err">' + w.total_templates + " templates tracked · " +
    fmtCount(w.recorded_calls) + " calls recorded · sorted by " + w.sorted_by + "</div>";
}

// renderAdaptation paints the adaptation-ledger panel from /adaptation:
// each column's skip ROI (rows skipped earned vs probe + maintenance
// work paid, with dead-zone counts), then the most recent zone-lifecycle
// events — what changed, why, and which query template triggered it.
function renderAdaptation(a) {
  const el = document.getElementById("adaptation");
  const evs = (a && a.events) || [], roi = (a && a.roi) || [];
  if (!evs.length && !roi.length) {
    el.innerHTML = '<div class="err">no adaptation events recorded yet</div>';
    return;
  }
  const esc = s => String(s).replace(/&/g, "&amp;").replace(/</g, "&lt;");
  let html = "";
  if (roi.length) {
    html += "<table><tr><th>column</th><th>kind</th><th>zones</th><th>rows skipped</th><th>probes</th><th>maint zones</th><th>net rows</th><th>dead</th></tr>";
    for (const r of roi) {
      const label = r.table + (r.shard ? "/s" + r.shard : "") + "." + r.column;
      html += "<tr><td>" + esc(label) + "</td><td>" + esc(r.kind) + "</td><td>" + fmtCount(r.zones) +
        "</td><td>" + fmtCount(r.rows_skipped) + "</td><td>" + fmtCount(r.zone_probes) +
        "</td><td>" + fmtCount(r.maintenance_zones) + "</td><td>" + fmtCount(Math.round(r.net_benefit_rows)) +
        "</td><td>" + (r.dead_zones ? fmtCount(r.dead_zones) : "–") + "</td></tr>";
    }
    html += "</table>";
  }
  if (evs.length) {
    const recent = evs.slice(-12).reverse();
    html += "<table><tr><th>time</th><th>column</th><th>event</th><th>cause</th><th>zones</th><th>triggered by</th></tr>";
    for (const e of recent) {
      html += "<tr><td>" + fmtTime(e.time) + "</td><td>" +
        esc(e.table + (e.shard ? "/s" + e.shard : "") + "." + e.column) +
        "</td><td>" + esc(e.kind) + "</td><td>" + esc(e.cause) +
        "</td><td>" + e.zones_before + "&rarr;" + e.zones_after +
        "</td><td>" + (e.fingerprint ? esc(e.fingerprint) : "–") + "</td></tr>";
    }
    html += "</table>";
  }
  html += '<div class="err">' + (a.total || 0) + " ledger events recorded · " +
    (a.dropped || 0) + " dropped from the ring</div>";
  el.innerHTML = html;
}

function renderLatest(s) {
  if (!s) return;
  const rows = [
    ["queries", fmtCount(s.queries)],
    ["rows scanned", fmtCount(s.rows_scanned)],
    ["rows skipped", fmtCount(s.rows_skipped)],
    ["skip ratio", (100 * s.skip_ratio).toFixed(1) + "%"],
    ["latency p50", fmtDur(s.latency_p50_seconds)],
    ["latency p95", fmtDur(s.latency_p95_seconds)],
    ["slow queries", fmtCount(s.slow_queries)],
    ["adaptation events", fmtCount(s.adapt_events)],
  ];
  let html = "<table><tr><th>metric</th><th>value</th></tr>";
  for (const [k, v] of rows) html += "<tr><td>" + k + "</td><td>" + v + "</td></tr>";
  for (const c of s.columns || []) {
    html += "<tr><td>" + c.table + "." + c.column + " skip ratio</td><td>" +
      (100 * c.skip_ratio).toFixed(1) + "% (" + c.zones + " zones" + (c.enabled ? "" : ", disabled") + ")</td></tr>";
  }
  document.getElementById("latest").innerHTML = html + "</table>";
}

async function refresh() {
  try {
    const [histR, skipR, healthR, wlR, adaptR] = await Promise.all(
      [fetch("/history"), fetch("/skipmap?zones=256"), fetch("/health"), fetch("/workload?k=10"),
       fetch("/adaptation?dead=8")]);
    const hist = await histR.json();
    const skip = await skipR.json();
    // /health answers 503 while critical — that is still a JSON body.
    const health = await healthR.json();
    const wl = await wlR.json();
    const adapt = await adaptR.json();
    const samples = hist.samples || [];
    const latest = samples[samples.length - 1];
    if (latest) {
      document.getElementById("t-queries").textContent = fmtCount(latest.queries);
      document.getElementById("t-skip").textContent = (100 * latest.skip_ratio).toFixed(1) + "%";
      document.getElementById("t-p95").textContent = fmtDur(latest.latency_p95_seconds);
      document.getElementById("t-events").textContent = fmtCount(latest.adapt_events);
    }
    const s1 = cssVar("--series-1"), s2 = cssVar("--series-2");
    lineChart(document.getElementById("skip-chart"), document.getElementById("skip-tip"), samples,
      [{name: "skip ratio", color: s1, get: s => s.skip_ratio}],
      v => (100 * v).toFixed(0) + "%");
    lineChart(document.getElementById("lat-chart"), document.getElementById("lat-tip"), samples,
      [{name: "p50", color: s1, get: s => s.latency_p50_seconds},
       {name: "p95", color: s2, get: s => s.latency_p95_seconds}],
      fmtDur);
    renderHeatmap(skip);
    renderHealth(health);
    renderWorkload(wl);
    renderAdaptation(adapt);
    renderLatest(latest);
    document.getElementById("status").textContent =
      "sampling every " + (hist.interval_ns / 1e9).toFixed(1) + "s · " +
      (hist.total || 0) + " samples taken · updated " + new Date().toLocaleTimeString(undefined, {hour12: false});
  } catch (err) {
    document.getElementById("status").textContent = "fetch failed: " + err;
  }
  setTimeout(() => { document.hidden ? document.addEventListener("visibilitychange", refresh, {once: true}) : refresh(); }, 2000);
}
refresh();
</script>
</body>
</html>
`
