package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"adskip/internal/stats"
)

// workloadSource builds a server source whose stats table holds two
// templates with distinguishable weights: "big" dominates total time and
// bytes, "hot" dominates calls.
func workloadSource() Source {
	src := testSource()
	tbl := stats.New(stats.Options{})
	tbl.Record(stats.Sample{
		Fingerprint: "SELECT COUNT(*) FROM data WHERE v < ?", Table: "data",
		Latency: 50 * time.Millisecond, RowsRead: 1000, RowsReturned: 10,
		RowsSkipped: 9000, ZonesRead: 4, ZonesPruned: 36, BytesScanned: 8000,
		ZoneIDs: map[string][]int{"v": {0, 1, 2, 3}},
	})
	for i := 0; i < 3; i++ {
		tbl.Record(stats.Sample{
			Fingerprint: "SELECT * FROM data WHERE v = ?", Table: "data",
			CacheHit: i > 0, Latency: time.Millisecond,
			RowsRead: 10, RowsReturned: 1, RowsSkipped: 90, BytesScanned: 80,
		})
	}
	src.Workload = tbl
	return src
}

// TestWorkloadEndpointSchema golden-locks the /workload wire schema: the
// exact JSON key set of the envelope and of each template object.
// Additions require updating this test deliberately; renames and
// removals break dashboards and adskip-load -workload, so they must
// never happen silently.
func TestWorkloadEndpointSchema(t *testing.T) {
	srv, err := Start(Options{}, workloadSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, srv.URL()+"/workload")
	if code != http.StatusOK {
		t.Fatalf("/workload = %d, want 200\n%s", code, body)
	}
	var envelope map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &envelope); err != nil {
		t.Fatalf("/workload: invalid JSON: %v\n%s", err, body)
	}
	wantEnvelope := []string{"evicted_templates", "recorded_calls", "sorted_by", "templates", "total_templates"}
	if got := sortedKeys(envelope); !equalStrings(got, wantEnvelope) {
		t.Fatalf("envelope keys = %v, want %v (schema is golden-locked)", got, wantEnvelope)
	}

	var templates []map[string]json.RawMessage
	if err := json.Unmarshal(envelope["templates"], &templates); err != nil || len(templates) != 2 {
		t.Fatalf("templates: err=%v n=%d", err, len(templates))
	}
	// The big template carries a zone sketch, so it has the full key set.
	wantTemplate := []string{
		"bytes_scanned", "cache_hits", "calls", "errors", "fingerprint",
		"first_seen", "last_seen", "mean_us", "p50_us", "p95_us",
		"rows_read", "rows_returned", "rows_skipped", "skip_base",
		"skip_fast", "skip_ratio", "skip_regression",
		"table", "total_seconds", "zone_touch", "zones_pruned", "zones_read",
	}
	if got := sortedKeys(templates[0]); !equalStrings(got, wantTemplate) {
		t.Fatalf("template keys = %v, want %v (schema is golden-locked)", got, wantTemplate)
	}
}

func sortedKeys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWorkloadSortAndTopK: ?sort picks the ranking dimension and ?k
// truncates after sorting.
func TestWorkloadSortAndTopK(t *testing.T) {
	srv, err := Start(Options{}, workloadSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	decode := func(query string) stats.WorkloadSnapshot {
		t.Helper()
		code, body := get(t, srv.URL()+"/workload"+query)
		if code != http.StatusOK {
			t.Fatalf("/workload%s = %d\n%s", query, code, body)
		}
		var snap stats.WorkloadSnapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("/workload%s: %v", query, err)
		}
		return snap
	}

	byTime := decode("")
	if byTime.SortedBy != stats.SortTime || byTime.Templates[0].Fingerprint != "SELECT COUNT(*) FROM data WHERE v < ?" {
		t.Fatalf("default sort: sorted_by=%q first=%q", byTime.SortedBy, byTime.Templates[0].Fingerprint)
	}
	byCalls := decode("?sort=calls")
	if byCalls.Templates[0].Fingerprint != "SELECT * FROM data WHERE v = ?" || byCalls.Templates[0].Calls != 3 {
		t.Fatalf("sort=calls first = %q (%d calls)", byCalls.Templates[0].Fingerprint, byCalls.Templates[0].Calls)
	}
	if byCalls.Templates[0].CacheHits != 2 {
		t.Fatalf("cache_hits = %d, want 2", byCalls.Templates[0].CacheHits)
	}
	topOne := decode("?k=1")
	if len(topOne.Templates) != 1 || topOne.TotalTemplates != 2 {
		t.Fatalf("k=1: %d templates shown of %d", len(topOne.Templates), topOne.TotalTemplates)
	}
	all := decode("?k=0")
	if len(all.Templates) != 2 {
		t.Fatalf("k=0 (all): %d templates", len(all.Templates))
	}
}

// TestWorkloadBadParams: invalid sort keys and k values are 400s, not
// silent fallbacks — a dashboard typo should be loud.
func TestWorkloadBadParams(t *testing.T) {
	srv, err := Start(Options{}, workloadSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, query := range []string{"?sort=junk", "?k=-1", "?k=abc"} {
		if code, _ := get(t, srv.URL()+"/workload"+query); code != http.StatusBadRequest {
			t.Fatalf("/workload%s = %d, want 400", query, code)
		}
	}
}

// TestWorkloadCSV: ?format=csv is a downloadable spreadsheet with one
// row per template.
func TestWorkloadCSV(t *testing.T) {
	srv, err := Start(Options{}, workloadSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/workload?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("Content-Type = %q, want text/csv", ct)
	}
	recs, err := csv.NewReader(resp.Body).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // header + 2 templates
		t.Fatalf("CSV rows = %d, want 3", len(recs))
	}
	if recs[0][0] != "fingerprint" {
		t.Fatalf("CSV header starts %q, want fingerprint", recs[0][0])
	}
}

// TestWorkloadNilSource: a server without a stats table still answers
// /workload with an empty, well-formed snapshot (and header-only CSV) —
// dashboards degrade instead of erroring.
func TestWorkloadNilSource(t *testing.T) {
	srv, err := Start(Options{}, testSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, srv.URL()+"/workload")
	if code != http.StatusOK {
		t.Fatalf("/workload = %d, want 200", code)
	}
	var snap stats.WorkloadSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Templates) != 0 || snap.TotalTemplates != 0 {
		t.Fatalf("empty server: %+v", snap)
	}
	code, body = get(t, srv.URL()+"/workload?format=csv")
	if code != http.StatusOK || !strings.HasPrefix(body, "fingerprint,") {
		t.Fatalf("empty CSV = %d:\n%s", code, body)
	}
}
