package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"adskip/internal/obs"
)

// adaptationSource builds a server source whose /adaptation snapshot
// covers two tables across two shards, with one dead-zone detail entry
// so the full optional key set appears in the golden check.
func adaptationSource() Source {
	src := testSource()
	src.Adaptation = func(maxDead int) obs.AdaptationSnapshot {
		detail := []obs.ROIZone{{Lo: 0, Hi: 64, Min: 5, Max: 9, Hits: 0, Misses: 12}}
		if maxDead == 0 {
			detail = nil
		}
		return obs.AdaptationSnapshot{
			Total:   5,
			Dropped: 1,
			Events: []obs.LedgerRecord{
				{Seq: 2, Time: time.Unix(1700000000, 0).UTC(), Table: "data", Column: "v",
					Shard: 1, Kind: obs.EventSplit, Cause: "split-gain",
					Fingerprint: "SELECT COUNT(*) FROM data WHERE v < ?",
					ZonesBefore: 4, ZonesAfter: 5, RowLo: 0, RowHi: 1024,
					MinBefore: 1, MaxBefore: 99, MinAfter: 1, MaxAfter: 99},
				{Seq: 3, Time: time.Unix(1700000010, 0).UTC(), Table: "data", Column: "v",
					Shard: 2, Kind: obs.EventWiden, Cause: "append-fold",
					ZonesBefore: 5, ZonesAfter: 5},
				{Seq: 4, Time: time.Unix(1700000020, 0).UTC(), Table: "aux", Column: "w",
					Kind: obs.EventRebuild, Cause: "manual",
					ZonesBefore: 2, ZonesAfter: 2},
			},
			ROI: []obs.ColumnROI{
				{Table: "aux", Column: "w", Kind: "static", Zones: 2, Bytes: 64,
					RowsSkipped: 100, CandidateRows: 400, ZoneProbes: 4, NetRows: 98},
				{Table: "data", Shard: 1, Column: "v", Kind: "adaptive", Zones: 5, Bytes: 160,
					RowsSkipped: 9000, RowsCovered: 100, BytesSkipped: 72000,
					CandidateRows: 10000, ZoneProbes: 50,
					MaintEvents: 2, MaintZones: 3, NetRows: 8758,
					DeadZones: 1, DeadZoneDetail: detail},
				{Table: "data", Shard: 2, Column: "v", Kind: "adaptive", Zones: 3, Bytes: 96,
					RowsSkipped: 1000, CandidateRows: 5000, ZoneProbes: 30, NetRows: 969},
			},
		}
	}
	return src
}

// TestAdaptationEndpointSchema golden-locks the /adaptation wire schema:
// the envelope, the event records, and the ROI rows. Additions require
// updating this test deliberately; renames and removals break the dash
// timeline panel and any operator tooling scraping the ledger.
func TestAdaptationEndpointSchema(t *testing.T) {
	srv, err := Start(Options{}, adaptationSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, srv.URL()+"/adaptation")
	if code != http.StatusOK {
		t.Fatalf("/adaptation = %d, want 200\n%s", code, body)
	}
	var envelope map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &envelope); err != nil {
		t.Fatalf("/adaptation: invalid JSON: %v\n%s", err, body)
	}
	wantEnvelope := []string{"dropped", "events", "roi", "total"}
	if got := sortedKeys(envelope); !equalStrings(got, wantEnvelope) {
		t.Fatalf("envelope keys = %v, want %v (schema is golden-locked)", got, wantEnvelope)
	}

	var events []map[string]json.RawMessage
	if err := json.Unmarshal(envelope["events"], &events); err != nil || len(events) != 3 {
		t.Fatalf("events: err=%v n=%d", err, len(events))
	}
	// The split record carries every field including the optional
	// shard/fingerprint stamps.
	wantEvent := []string{
		"cause", "column", "fingerprint", "kind", "max_after", "max_before",
		"min_after", "min_before", "row_hi", "row_lo", "seq", "shard",
		"table", "time", "zones_after", "zones_before",
	}
	if got := sortedKeys(events[0]); !equalStrings(got, wantEvent) {
		t.Fatalf("event keys = %v, want %v (schema is golden-locked)", got, wantEvent)
	}
	var kind string
	if err := json.Unmarshal(events[0]["kind"], &kind); err != nil || kind != "split" {
		t.Fatalf("event kind = %q (%v), want the string form \"split\"", kind, err)
	}

	var roi []map[string]json.RawMessage
	if err := json.Unmarshal(envelope["roi"], &roi); err != nil || len(roi) != 3 {
		t.Fatalf("roi: err=%v n=%d", err, len(roi))
	}
	// roi[1] is data/shard1 — the row with dead-zone detail, so it has
	// the full key set.
	wantROI := []string{
		"bytes", "bytes_skipped", "candidate_rows", "column", "dead_zone_detail",
		"dead_zones", "kind", "maintenance_events", "maintenance_zones",
		"net_benefit_rows", "rows_covered", "rows_skipped", "shard",
		"table", "zone_probes", "zones",
	}
	if got := sortedKeys(roi[1]); !equalStrings(got, wantROI) {
		t.Fatalf("roi keys = %v, want %v (schema is golden-locked)", got, wantROI)
	}
}

// TestAdaptationFilters: ?table= and ?shard=N narrow both the event list
// and the ROI rows while total/dropped keep reporting the whole ledger.
func TestAdaptationFilters(t *testing.T) {
	srv, err := Start(Options{}, adaptationSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	decode := func(query string) obs.AdaptationSnapshot {
		t.Helper()
		code, body := get(t, srv.URL()+"/adaptation"+query)
		if code != http.StatusOK {
			t.Fatalf("/adaptation%s = %d\n%s", query, code, body)
		}
		var snap obs.AdaptationSnapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatal(err)
		}
		return snap
	}

	byTable := decode("?table=data")
	if len(byTable.Events) != 2 || len(byTable.ROI) != 2 {
		t.Fatalf("table=data: %d events / %d roi, want 2 / 2", len(byTable.Events), len(byTable.ROI))
	}
	for _, e := range byTable.Events {
		if e.Table != "data" {
			t.Fatalf("table filter leaked %+v", e)
		}
	}
	if byTable.Total != 5 || byTable.Dropped != 1 {
		t.Fatalf("filtered total/dropped = %d/%d, want the whole ledger 5/1", byTable.Total, byTable.Dropped)
	}

	byShard := decode("?shard=2")
	if len(byShard.Events) != 1 || byShard.Events[0].Kind != obs.EventWiden {
		t.Fatalf("shard=2 events = %+v, want just the widen", byShard.Events)
	}
	if len(byShard.ROI) != 1 || byShard.ROI[0].Shard != 2 {
		t.Fatalf("shard=2 roi = %+v", byShard.ROI)
	}

	both := decode("?table=data&shard=1")
	if len(both.Events) != 1 || both.Events[0].Fingerprint == "" {
		t.Fatalf("table+shard events = %+v, want the fingerprinted split", both.Events)
	}

	// ?dead=0 keeps the dead-zone counts but drops the detail.
	noDetail := decode("?dead=0")
	for _, r := range noDetail.ROI {
		if r.DeadZoneDetail != nil {
			t.Fatalf("dead=0 still carries detail: %+v", r)
		}
		if r.Table == "data" && r.Shard == 1 && r.DeadZones != 1 {
			t.Fatalf("dead=0 lost the count: %+v", r)
		}
	}
}

// TestAdaptationBadParams: malformed or out-of-range filters are 400s —
// never 500s, never a silently empty 200.
func TestAdaptationBadParams(t *testing.T) {
	srv, err := Start(Options{}, adaptationSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, q := range []string{
		"?shard=abc", "?shard=0", "?shard=-1", "?shard=99",
		"?table=nope",
		"?dead=-1", "?dead=abc",
	} {
		if code, body := get(t, srv.URL()+"/adaptation"+q); code != http.StatusBadRequest {
			t.Errorf("/adaptation%s = %d, want 400\n%s", q, code, body)
		}
	}
}

// TestAdaptationCSV golden-locks the CSV header and checks one data row.
func TestAdaptationCSV(t *testing.T) {
	srv, err := Start(Options{}, adaptationSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, srv.URL()+"/adaptation?format=csv")
	if code != http.StatusOK {
		t.Fatalf("/adaptation?format=csv = %d\n%s", code, body)
	}
	rows, err := csv.NewReader(strings.NewReader(body)).ReadAll()
	if err != nil {
		t.Fatalf("CSV parse: %v\n%s", err, body)
	}
	wantHeader := "table,shard,column,kind,zones,bytes," +
		"rows_skipped,rows_covered,bytes_skipped,candidate_rows," +
		"zone_probes,maintenance_events,maintenance_zones,net_benefit_rows,dead_zones"
	if got := strings.Join(rows[0], ","); got != wantHeader {
		t.Fatalf("CSV header drifted:\n got %s\nwant %s", got, wantHeader)
	}
	if len(rows) != 4 {
		t.Fatalf("CSV rows = %d, want header + 3 ROI rows", len(rows))
	}
	// data/shard1: the fully-populated row.
	want := []string{"data", "1", "v", "adaptive", "5", "160",
		"9000", "100", "72000", "10000", "50", "2", "3", "8758.0", "1"}
	if got := strings.Join(rows[2], ","); got != strings.Join(want, ",") {
		t.Fatalf("CSV row drifted:\n got %s\nwant %s", got, strings.Join(want, ","))
	}
}

// TestAdaptationNilSource: a server with no ledger serves an empty — but
// well-formed — snapshot, not a 500.
func TestAdaptationNilSource(t *testing.T) {
	srv, err := Start(Options{}, testSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, srv.URL()+"/adaptation")
	if code != http.StatusOK {
		t.Fatalf("/adaptation = %d\n%s", code, body)
	}
	var snap obs.AdaptationSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Events == nil || snap.ROI == nil || len(snap.Events)+len(snap.ROI) != 0 {
		t.Fatalf("nil source snapshot = %+v, want empty arrays", snap)
	}
}
