package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeSample is one point-in-time reading of the Go runtime: goroutine
// count, heap state, and cumulative GC work. Samples are cheap (one
// runtime.ReadMemStats call) and taken on a fixed interval by a Collector.
type RuntimeSample struct {
	Time          time.Time `json:"time"`
	Goroutines    int       `json:"goroutines"`
	HeapAlloc     uint64    `json:"heap_alloc_bytes"`
	HeapSys       uint64    `json:"heap_sys_bytes"`
	HeapObjects   uint64    `json:"heap_objects"`
	NumGC         uint32    `json:"num_gc"`
	PauseTotalNs  uint64    `json:"gc_pause_total_ns"`
	GCCPUFraction float64   `json:"gc_cpu_fraction"`
}

// DefaultSampleInterval is the collector's sampling period when none is
// given; DefaultSampleCapacity the ring size (about 21 minutes of history
// at the default interval).
const (
	DefaultSampleInterval = 5 * time.Second
	DefaultSampleCapacity = 256
)

// Collector samples runtime statistics on a fixed interval into a bounded
// ring buffer. It owns one background goroutine; Stop shuts it down and
// waits for it to exit, so a closed Collector leaks nothing.
type Collector struct {
	interval time.Duration

	mu   sync.Mutex
	buf  []RuntimeSample
	next int
	full bool

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewCollector starts a collector sampling every interval into a ring of
// capacity samples (defaults apply when either is <= 0). The first sample
// is taken immediately so /runtime is never empty.
func NewCollector(interval time.Duration, capacity int) *Collector {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	if capacity <= 0 {
		capacity = DefaultSampleCapacity
	}
	c := &Collector{
		interval: interval,
		buf:      make([]RuntimeSample, 0, capacity),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	c.sample()
	go c.run()
	return c
}

// run is the collector goroutine: sample, sleep, repeat until stopped.
func (c *Collector) run() {
	defer close(c.done)
	tick := time.NewTicker(c.interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			c.sample()
		case <-c.stop:
			return
		}
	}
}

// sample appends one reading to the ring.
func (c *Collector) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := RuntimeSample{
		Time:          time.Now(),
		Goroutines:    runtime.NumGoroutine(),
		HeapAlloc:     ms.HeapAlloc,
		HeapSys:       ms.HeapSys,
		HeapObjects:   ms.HeapObjects,
		NumGC:         ms.NumGC,
		PauseTotalNs:  ms.PauseTotalNs,
		GCCPUFraction: ms.GCCPUFraction,
	}
	c.mu.Lock()
	if len(c.buf) < cap(c.buf) {
		c.buf = append(c.buf, s)
	} else {
		c.buf[c.next] = s
		c.next = (c.next + 1) % cap(c.buf)
		c.full = true
	}
	c.mu.Unlock()
}

// Snapshot returns the retained samples oldest-first.
func (c *Collector) Snapshot() []RuntimeSample {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RuntimeSample, 0, len(c.buf))
	if c.full {
		out = append(out, c.buf[c.next:]...)
		out = append(out, c.buf[:c.next]...)
	} else {
		out = append(out, c.buf...)
	}
	return out
}

// Stop shuts the sampling goroutine down and waits for it to exit.
// Idempotent and safe to call concurrently.
func (c *Collector) Stop() {
	c.once.Do(func() { close(c.stop) })
	<-c.done
}
