package telemetry

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"adskip/internal/obs"
)

// Golden locks for the JSON payloads the dashboard panels poll. The
// /workload and /adaptation schemas are locked in their own test files;
// this file covers the /history and /skipmap panels plus the shard
// filters the panels' drill-downs rely on.

// TestHistoryPanelSchema golden-locks the /history envelope and sample
// key set the convergence chart consumes.
func TestHistoryPanelSchema(t *testing.T) {
	smp := obs.NewSampler(time.Hour, 8, func(h *obs.HistorySample) {
		h.Queries = 7
		h.RowsScanned, h.RowsSkipped = 100, 900
		h.SkipRatio = 0.9
		h.SkipRegression = 0.01
		h.Columns = append(h.Columns, obs.HistoryColumn{
			Table: "t", Column: "v", Shard: 1, SkipRatio: 0.5, Zones: 3, Enabled: true})
	})
	defer smp.Stop()
	src := testSource()
	src.History = smp
	srv, err := Start(Options{}, src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, srv.URL()+"/history")
	if code != http.StatusOK {
		t.Fatalf("/history = %d\n%s", code, body)
	}
	var envelope map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &envelope); err != nil {
		t.Fatal(err)
	}
	if got, want := sortedKeys(envelope), []string{"interval_ns", "samples", "total"}; !equalStrings(got, want) {
		t.Fatalf("envelope keys = %v, want %v (schema is golden-locked)", got, want)
	}
	var samples []map[string]json.RawMessage
	if err := json.Unmarshal(envelope["samples"], &samples); err != nil || len(samples) == 0 {
		t.Fatalf("samples: err=%v n=%d", err, len(samples))
	}
	wantSample := []string{
		"adapt_events", "columns", "errors", "latency_p50_seconds",
		"latency_p95_seconds", "queries", "queue_depth", "rows_covered",
		"rows_scanned", "rows_skipped", "skip_ratio", "skip_regression",
		"slow_queries", "time", "wal_lag_seconds",
	}
	if got := sortedKeys(samples[0]); !equalStrings(got, wantSample) {
		t.Fatalf("sample keys = %v, want %v (schema is golden-locked)", got, wantSample)
	}
	var cols []map[string]json.RawMessage
	if err := json.Unmarshal(samples[0]["columns"], &cols); err != nil || len(cols) != 1 {
		t.Fatalf("columns: err=%v n=%d", err, len(cols))
	}
	wantCol := []string{"column", "enabled", "shard", "skip_ratio", "table", "zones"}
	if got := sortedKeys(cols[0]); !equalStrings(got, wantCol) {
		t.Fatalf("column keys = %v, want %v (schema is golden-locked)", got, wantCol)
	}
}

// TestSkipmapPanelSchema golden-locks the /skipmap table, column, and
// zone key sets the heatmap panel consumes.
func TestSkipmapPanelSchema(t *testing.T) {
	srv, err := Start(Options{}, testSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, srv.URL()+"/skipmap")
	if code != http.StatusOK {
		t.Fatalf("/skipmap = %d\n%s", code, body)
	}
	var tables []map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &tables); err != nil || len(tables) != 1 {
		t.Fatalf("tables: err=%v n=%d", err, len(tables))
	}
	if got, want := sortedKeys(tables[0]), []string{"columns", "rows", "table"}; !equalStrings(got, want) {
		t.Fatalf("table keys = %v, want %v (schema is golden-locked; shard/shards appear only when sharded)", got, want)
	}
	var cols []map[string]json.RawMessage
	if err := json.Unmarshal(tables[0]["columns"], &cols); err != nil || len(cols) != 1 {
		t.Fatalf("columns: err=%v n=%d", err, len(cols))
	}
	wantCol := []string{
		"bytes", "candidate_rows", "column", "covered_rows", "declined",
		"enabled", "kind", "probes", "quarantined", "rows_skipped",
		"skip_ratio", "zone_detail", "zone_probes", "zones",
	}
	if got := sortedKeys(cols[0]); !equalStrings(got, wantCol) {
		t.Fatalf("column keys = %v, want %v (schema is golden-locked)", got, wantCol)
	}
	var zones []map[string]json.RawMessage
	if err := json.Unmarshal(cols[0]["zone_detail"], &zones); err != nil || len(zones) != 1 {
		t.Fatalf("zone_detail: err=%v n=%d", err, len(zones))
	}
	wantZone := []string{"heat", "hi", "hits", "lo", "max", "min", "misses", "non_null"}
	if got := sortedKeys(zones[0]); !equalStrings(got, wantZone) {
		t.Fatalf("zone keys = %v, want %v (schema is golden-locked)", got, wantZone)
	}
}

// TestHistoryShardFilter: ?shard=N narrows each sample's per-column
// series to one shard; engine-wide totals stay catalog-wide. Bad and
// out-of-range shards are 400s.
func TestHistoryShardFilter(t *testing.T) {
	smp := obs.NewSampler(time.Hour, 8, func(h *obs.HistorySample) {
		h.Queries = 7
		for sh := 1; sh <= 3; sh++ {
			h.Columns = append(h.Columns, obs.HistoryColumn{
				Table: "t", Column: "v", Shard: sh, SkipRatio: 0.1 * float64(sh), Zones: int64(sh)})
		}
	})
	defer smp.Stop()
	src := testSource()
	src.History = smp
	srv, err := Start(Options{}, src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, srv.URL()+"/history?shard=2")
	if code != http.StatusOK {
		t.Fatalf("/history?shard=2 = %d\n%s", code, body)
	}
	var listing struct {
		Total   uint64              `json:"total"`
		Samples []obs.HistorySample `json:"samples"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(listing.Samples))
	}
	s := listing.Samples[0]
	if len(s.Columns) != 1 || s.Columns[0].Shard != 2 {
		t.Fatalf("shard=2 columns = %+v, want exactly the shard-2 series", s.Columns)
	}
	if s.Queries != 7 {
		t.Fatalf("shard filter touched engine-wide totals: %+v", s)
	}

	for _, q := range []string{"?shard=abc", "?shard=0", "?shard=-1", "?shard=4"} {
		if code, body := get(t, srv.URL()+"/history"+q); code != http.StatusBadRequest {
			t.Errorf("/history%s = %d, want 400\n%s", q, code, body)
		}
	}
}

// TestSlowShardFilter: ?shard=N matches a per-shard trace's own stamp or
// membership in a merged logical trace's scanned-shard list.
func TestSlowShardFilter(t *testing.T) {
	slow := obs.NewTraceRing(8)
	mk := func(shard int, shards []int) *obs.QueryTrace {
		root := obs.NewSpan("query")
		root.Finish()
		return &obs.QueryTrace{Table: "t", Start: root.Start, Root: root,
			Shard: shard, Shards: shards}
	}
	slow.Append(mk(1, nil))          // per-shard trace from shard 1
	slow.Append(mk(0, []int{1, 3}))  // merged logical trace that scanned 1 and 3
	slow.Append(mk(2, nil))          // per-shard trace from shard 2
	src := testSource()
	src.SlowTraces = slow
	srv, err := Start(Options{}, src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	decode := func(query string) (uint64, []*obs.QueryTrace) {
		t.Helper()
		code, body := get(t, srv.URL()+"/slow"+query)
		if code != http.StatusOK {
			t.Fatalf("/slow%s = %d\n%s", query, code, body)
		}
		var listing struct {
			Total  uint64            `json:"total"`
			Traces []*obs.QueryTrace `json:"traces"`
		}
		if err := json.Unmarshal([]byte(body), &listing); err != nil {
			t.Fatal(err)
		}
		return listing.Total, listing.Traces
	}

	if total, all := decode(""); total != 3 || len(all) != 3 {
		t.Fatalf("unfiltered: total=%d n=%d", total, len(all))
	}
	// Shard 1: its own trace plus the merged trace that scanned it.
	total, one := decode("?shard=1")
	if len(one) != 2 {
		t.Fatalf("shard=1 traces = %d, want 2", len(one))
	}
	if total != 3 {
		t.Fatalf("filtered total = %d, want the whole ring 3", total)
	}
	// Shard 3 appears only inside the merged trace's shard list.
	if _, three := decode("?shard=3"); len(three) != 1 || len(three[0].Shards) != 2 {
		t.Fatalf("shard=3 traces = %+v, want just the merged logical trace", three)
	}
	if _, two := decode("?shard=2"); len(two) != 1 || two[0].Shard != 2 {
		t.Fatalf("shard=2 traces = %+v", two)
	}

	for _, q := range []string{"?shard=abc", "?shard=0", "?shard=9"} {
		if code, body := get(t, srv.URL()+"/slow"+q); code != http.StatusBadRequest {
			t.Errorf("/slow%s = %d, want 400\n%s", q, code, body)
		}
	}
}
