package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"adskip/internal/health"
	"adskip/internal/obs"
)

// testSource builds a server source with one trace and a canned skipmap.
func testSource() Source {
	reg := obs.NewRegistry()
	reg.Counter("t_total", "help").Inc()
	ring := obs.NewTraceRing(8)
	root := obs.NewSpan("query")
	root.StartChild("scan").FinishRows(100, 10, 80)
	root.Finish()
	ring.Append(&obs.QueryTrace{Table: "t", Start: root.Start, Root: root})
	return Source{
		Registry: reg,
		Traces:   ring,
		Events:   func() []obs.Event { return []obs.Event{{Table: "t", Column: "v", Kind: obs.EventSplit}} },
		Skipmap: func(maxZones int) []obs.SkipmapTable {
			zones := []obs.SkipmapZone{{Lo: 0, Hi: 64, Min: 1, Max: 9, NonNull: 64, Hits: 3, Misses: 1}}
			if maxZones == 0 {
				zones = nil
			}
			return []obs.SkipmapTable{{Table: "t", Rows: 64, Columns: []obs.SkipmapColumn{{
				Column: "v", Kind: "adaptive", Zones: 1, Enabled: true, ZoneDetail: zones,
			}}}}
		},
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	srv, err := Start(Options{}, testSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.HasPrefix(srv.URL(), "http://127.0.0.1:") {
		t.Fatalf("URL = %q, want ephemeral localhost", srv.URL())
	}

	// Every JSON endpoint returns 200 and parses.
	for _, path := range []string{"/metrics.json", "/traces", "/slow", "/skipmap", "/events", "/runtime"} {
		code, body := get(t, srv.URL()+path)
		if code != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, code)
		}
		var v any
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v\n%s", path, err, body)
		}
	}

	code, body := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "t_total 1") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}

	// /traces carries the span tree; ?format=chrome is a trace_event file.
	_, body = get(t, srv.URL()+"/traces")
	if !strings.Contains(body, `"spans"`) || !strings.Contains(body, `"scan"`) {
		t.Fatalf("/traces missing span tree:\n%s", body)
	}
	_, body = get(t, srv.URL()+"/traces?format=chrome")
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &chrome); err != nil || len(chrome.TraceEvents) != 2 {
		t.Fatalf("chrome export: err=%v events=%d\n%s", err, len(chrome.TraceEvents), body)
	}

	// /skipmap default includes zone detail; zones=0 strips it; junk is 400.
	_, body = get(t, srv.URL()+"/skipmap")
	if !strings.Contains(body, `"zone_detail"`) || !strings.Contains(body, `"hits": 3`) {
		t.Fatalf("/skipmap missing zone detail:\n%s", body)
	}
	_, body = get(t, srv.URL()+"/skipmap?zones=0")
	if strings.Contains(body, `"zone_detail"`) || !strings.Contains(body, `"zones_truncated": 1`) {
		t.Fatalf("/skipmap?zones=0 should strip detail and count truncation:\n%s", body)
	}
	if code, _ := get(t, srv.URL()+"/skipmap?zones=junk"); code != http.StatusBadRequest {
		t.Fatalf("/skipmap?zones=junk = %d, want 400", code)
	}

	if code, _ := get(t, srv.URL()+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d, want 200", code)
	}
	if code, _ := get(t, srv.URL()+"/nope"); code != http.StatusNotFound {
		t.Fatalf("/nope = %d, want 404", code)
	}
}

func TestServerMissingSource(t *testing.T) {
	if _, err := Start(Options{}, Source{}); err == nil {
		t.Fatal("Start with empty source did not fail")
	}
}

func TestServerOptionalSourcesNil(t *testing.T) {
	src := Source{Registry: obs.NewRegistry(), Traces: obs.NewTraceRing(1)}
	srv, err := Start(Options{}, src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/slow", "/skipmap", "/events"} {
		code, body := get(t, srv.URL()+path)
		if code != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, code)
		}
		var v any
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v", path, err)
		}
	}
}

func TestCollectorRingAndStop(t *testing.T) {
	c := NewCollector(time.Millisecond, 4)
	deadline := time.Now().Add(2 * time.Second)
	for len(c.Snapshot()) < 4 {
		if time.Now().After(deadline) {
			t.Fatal("collector never filled its ring")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
	snap := c.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d samples, want 4", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Time.Before(snap[i-1].Time) {
			t.Fatal("samples not oldest-first")
		}
	}
	if snap[0].Goroutines <= 0 {
		t.Fatalf("sample missing goroutine count: %+v", snap[0])
	}
	// After Stop the ring is frozen.
	n := len(c.Snapshot())
	time.Sleep(5 * time.Millisecond)
	if len(c.Snapshot()) != n {
		t.Fatal("collector kept sampling after Stop")
	}
}

// TestHistoryEndpoint serves an adaptation timeline and locks the
// listing envelope: interval, total, then samples, oldest-first.
func TestHistoryEndpoint(t *testing.T) {
	smp := obs.NewSampler(time.Hour, 8, func(h *obs.HistorySample) {
		h.Queries = 7
		h.Columns = append(h.Columns, obs.HistoryColumn{Table: "t", Column: "v", SkipRatio: 0.5, Zones: 3, Enabled: true})
	})
	defer smp.Stop()
	src := testSource()
	src.History = smp
	srv, err := Start(Options{}, src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, srv.URL()+"/history")
	if code != http.StatusOK {
		t.Fatalf("/history = %d, want 200", code)
	}
	var listing struct {
		IntervalNS int64               `json:"interval_ns"`
		Total      uint64              `json:"total"`
		Samples    []obs.HistorySample `json:"samples"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("invalid /history JSON: %v\n%s", err, body)
	}
	if listing.IntervalNS != int64(time.Hour) || listing.Total != 1 || len(listing.Samples) != 1 {
		t.Fatalf("listing = interval %d, total %d, %d samples", listing.IntervalNS, listing.Total, len(listing.Samples))
	}
	if s := listing.Samples[0]; s.Queries != 7 || len(s.Columns) != 1 || s.Columns[0].Column != "v" {
		t.Fatalf("sample did not survive serving: %+v", listing.Samples[0])
	}
	// Envelope key order is part of the contract (scripts cut on it).
	if !strings.Contains(body, `"interval_ns"`) ||
		strings.Index(body, `"interval_ns"`) > strings.Index(body, `"total"`) ||
		strings.Index(body, `"total"`) > strings.Index(body, `"samples"`) {
		t.Fatalf("/history envelope keys out of order:\n%s", body)
	}

	// With no sampler the endpoint still answers with an empty listing.
	srv2, err := Start(Options{}, testSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	code, body = get(t, srv2.URL()+"/history")
	if code != http.StatusOK {
		t.Fatalf("/history without sampler = %d, want 200", code)
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("invalid empty /history JSON: %v\n%s", err, body)
	}
	if len(listing.Samples) != 0 {
		t.Fatalf("empty listing has %d samples", len(listing.Samples))
	}
}

// TestDashEndpoint: the dashboard is a self-contained HTML page wired to
// the JSON endpoints it polls.
func TestDashEndpoint(t *testing.T) {
	srv, err := Start(Options{}, testSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(srv.URL() + "/dash")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/dash = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("/dash Content-Type = %q, want text/html", ct)
	}
	page := string(body)
	for _, want := range []string{"<!DOCTYPE html>", "/history", "/skipmap", "/adaptation", "renderAdaptation", "prefers-color-scheme"} {
		if !strings.Contains(page, want) {
			t.Fatalf("/dash page missing %q", want)
		}
	}
}

// healthTestMonitor builds a monitor driven to critical with injected
// tick times, so the golden bodies below are fully deterministic: a
// queue-depth objective (integer values — no float rendering noise)
// breaches for four consecutive ticks.
func healthTestMonitor(t *testing.T) *health.Monitor {
	t.Helper()
	m, err := health.New(
		[]health.Objective{{Signal: health.SignalQueueDepth, Threshold: 8, Budget: 0.5}},
		time.Second,
		health.Config{
			Short: 2 * time.Second, Mid: 4 * time.Second, Long: 8 * time.Second,
			CritBurn: 2, WarnBurn: 1, ClearTicks: 3,
		},
		nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	m.OnSample(&obs.HistorySample{Time: at}) // baseline
	for i := 0; i < 4; i++ {
		at = at.Add(time.Second)
		m.OnSample(&obs.HistorySample{Time: at, QueueDepth: 40})
	}
	if m.Status() != health.SevCritical {
		t.Fatalf("setup: monitor status = %v, want critical", m.Status())
	}
	return m
}

// TestHealthEndpointGolden locks the /health JSON shape — and the
// readiness semantics: 503 while critical, 200 otherwise.
func TestHealthEndpointGolden(t *testing.T) {
	m := healthTestMonitor(t)
	src := testSource()
	src.Health = func() (health.Snapshot, bool) { return m.Snapshot(), true }
	src.Alerts = m.Alerts
	srv, err := Start(Options{}, src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, srv.URL()+"/health")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/health while critical = %d, want 503", code)
	}
	const wantHealth = `{
  "enabled": true,
  "status": "critical",
  "since": "2026-01-02T03:04:09Z",
  "ticks": 5,
  "interval_ns": 1000000000,
  "objectives": [
    {
      "name": "queue_depth",
      "signal": "queue_depth",
      "threshold": 8,
      "budget": 0.5,
      "state": "critical",
      "since": "2026-01-02T03:04:09Z",
      "windows": [
        {
          "window": "2s",
          "value": 40,
          "burn": 2,
          "bad_ticks": 2,
          "data_ticks": 2
        },
        {
          "window": "4s",
          "value": 40,
          "burn": 2,
          "bad_ticks": 4,
          "data_ticks": 4
        },
        {
          "window": "8s",
          "value": 40,
          "burn": 1,
          "bad_ticks": 4,
          "data_ticks": 4
        }
      ]
    }
  ]
}
`
	if body != wantHealth {
		t.Errorf("/health JSON drifted:\n--- got ---\n%s\n--- want ---\n%s", body, wantHealth)
	}

	code, body = get(t, srv.URL()+"/alerts")
	if code != http.StatusOK {
		t.Fatalf("/alerts = %d, want 200", code)
	}
	const wantAlerts = `{
  "active": [
    {
      "name": "queue_depth",
      "signal": "queue_depth",
      "threshold": 8,
      "budget": 0.5,
      "state": "critical",
      "since": "2026-01-02T03:04:09Z",
      "windows": [
        {
          "window": "2s",
          "value": 40,
          "burn": 2,
          "bad_ticks": 2,
          "data_ticks": 2
        },
        {
          "window": "4s",
          "value": 40,
          "burn": 2,
          "bad_ticks": 4,
          "data_ticks": 4
        },
        {
          "window": "8s",
          "value": 40,
          "burn": 1,
          "bad_ticks": 4,
          "data_ticks": 4
        }
      ]
    }
  ],
  "history": [
    {
      "time": "2026-01-02T03:04:09Z",
      "objective": "queue_depth",
      "signal": "queue_depth",
      "from": "ok",
      "to": "critical",
      "value": 40,
      "burn": 2
    }
  ],
  "total": 1,
  "dropped": 0
}
`
	if body != wantAlerts {
		t.Errorf("/alerts JSON drifted:\n--- got ---\n%s\n--- want ---\n%s", body, wantAlerts)
	}
}

// TestHealthEndpointRecovers: once the monitor steps back below
// critical, /health returns 200 again (the readiness flip is live, not
// latched).
func TestHealthEndpointRecovers(t *testing.T) {
	m := healthTestMonitor(t)
	src := testSource()
	src.Health = func() (health.Snapshot, bool) { return m.Snapshot(), true }
	srv, err := Start(Options{}, src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, srv.URL()+"/health"); code != http.StatusServiceUnavailable {
		t.Fatalf("critical /health = %d, want 503", code)
	}
	// Healthy ticks until the burn decays and hysteresis clears.
	at := time.Date(2026, 1, 2, 3, 4, 9, 0, time.UTC)
	for i := 0; i < 20 && m.Status() != health.SevOK; i++ {
		at = at.Add(time.Second)
		m.OnSample(&obs.HistorySample{Time: at, QueueDepth: 0})
	}
	if m.Status() != health.SevOK {
		t.Fatalf("monitor never recovered: %v", m.Status())
	}
	if code, _ := get(t, srv.URL()+"/health"); code != http.StatusOK {
		t.Fatal("/health still 503 after recovery")
	}
}

// TestHealthEndpointDisabled: without SLO tracking the probe answers 200
// so it cannot fail a deployment that declared no objectives.
func TestHealthEndpointDisabled(t *testing.T) {
	srv, err := Start(Options{}, testSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, srv.URL()+"/health")
	if code != http.StatusOK || !strings.Contains(body, `"enabled": false`) {
		t.Fatalf("/health disabled = %d:\n%s", code, body)
	}
	code, body = get(t, srv.URL()+"/alerts")
	if code != http.StatusOK || !strings.Contains(body, `"active": []`) {
		t.Fatalf("/alerts disabled = %d:\n%s", code, body)
	}
}
