package expr

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"adskip/internal/storage"
)

// Ranges is a set of disjoint, sorted, inclusive intervals [Lo[i], Hi[i]]
// over a column's int64 code space. It is the physical form of a predicate:
// a row qualifies iff its code falls inside some interval.
//
// The empty Ranges matches nothing; Full() matches everything.
type Ranges struct {
	Lo []int64
	Hi []int64
}

// Full returns the range set matching every code.
func Full() Ranges {
	return Ranges{Lo: []int64{math.MinInt64}, Hi: []int64{math.MaxInt64}}
}

// Empty reports whether the set matches nothing.
func (r Ranges) Empty() bool { return len(r.Lo) == 0 }

// Len returns the number of intervals.
func (r Ranges) Len() int { return len(r.Lo) }

// Contains reports whether code c is inside some interval (binary search;
// kernels use specialized fast paths for 1-interval sets instead).
func (r Ranges) Contains(c int64) bool {
	// Find first interval with Hi >= c; c matches iff its Lo <= c.
	i := sort.Search(len(r.Hi), func(i int) bool { return r.Hi[i] >= c })
	return i < len(r.Lo) && r.Lo[i] <= c
}

// Overlaps reports whether [lo, hi] (inclusive) intersects any interval.
// This is the zone-pruning primitive: a zone with bounds [lo, hi] can be
// skipped iff Overlaps is false.
func (r Ranges) Overlaps(lo, hi int64) bool {
	i := sort.Search(len(r.Hi), func(i int) bool { return r.Hi[i] >= lo })
	return i < len(r.Lo) && r.Lo[i] <= hi
}

// Covers reports whether [lo, hi] (inclusive) is fully inside one interval.
// When a zone is covered, every non-null row in it qualifies and the scan
// can short-circuit (count += zone size without touching data).
func (r Ranges) Covers(lo, hi int64) bool {
	i := sort.Search(len(r.Hi), func(i int) bool { return r.Hi[i] >= lo })
	return i < len(r.Lo) && r.Lo[i] <= lo && hi <= r.Hi[i]
}

// Intersect returns r ∩ o as a new normalized range set.
func (r Ranges) Intersect(o Ranges) Ranges {
	var out Ranges
	i, j := 0, 0
	for i < len(r.Lo) && j < len(o.Lo) {
		lo := max64(r.Lo[i], o.Lo[j])
		hi := min64(r.Hi[i], o.Hi[j])
		if lo <= hi {
			out.Lo = append(out.Lo, lo)
			out.Hi = append(out.Hi, hi)
		}
		if r.Hi[i] < o.Hi[j] {
			i++
		} else {
			j++
		}
	}
	return out
}

// Normalize sorts intervals, drops empty ones, and merges overlapping or
// adjacent intervals. It returns the receiver value for chaining.
func (r Ranges) Normalize() Ranges {
	type iv struct{ lo, hi int64 }
	ivs := make([]iv, 0, len(r.Lo))
	for i := range r.Lo {
		if r.Lo[i] <= r.Hi[i] {
			ivs = append(ivs, iv{r.Lo[i], r.Hi[i]})
		}
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].lo < ivs[b].lo })
	out := Ranges{}
	for _, v := range ivs {
		n := len(out.Lo)
		if n > 0 && (v.lo <= out.Hi[n-1] || (out.Hi[n-1] != math.MaxInt64 && v.lo == out.Hi[n-1]+1)) {
			if v.hi > out.Hi[n-1] {
				out.Hi[n-1] = v.hi
			}
			continue
		}
		out.Lo = append(out.Lo, v.lo)
		out.Hi = append(out.Hi, v.hi)
	}
	return out
}

// String renders the interval set for debugging.
func (r Ranges) String() string {
	if r.Empty() {
		return "∅"
	}
	// Rendered with strconv rather than fmt: query traces stringify the
	// predicate once per query, so this sits near the hot path.
	b := make([]byte, 0, 24*len(r.Lo))
	for i := range r.Lo {
		if i > 0 {
			b = append(b, " ∪ "...)
		}
		b = append(b, '[')
		b = strconv.AppendInt(b, r.Lo[i], 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, r.Hi[i], 10)
		b = append(b, ']')
	}
	return string(b)
}

// Lower compiles the predicate against a concrete column into code
// intervals. This is where logical types disappear:
//
//   - Int64 literals become codes directly.
//   - Float64 literals go through the order-preserving encoding. Because
//     the encoding is a bijection on non-NaN floats, strict/inclusive
//     bounds translate exactly.
//   - String literals on a sealed dictionary translate via
//     LowerBound/UpperBound so that range predicates are correct even for
//     strings absent from the dictionary. On an unsealed dictionary only
//     EQ/NE/IN are representable (code order is meaningless); range ops
//     return an error telling the caller to seal first.
func Lower(p Pred, col *storage.Column) (Ranges, error) {
	if err := p.Validate(); err != nil {
		return Ranges{}, err
	}
	for _, a := range p.Args {
		if a.Type() != col.Type() {
			return Ranges{}, fmt.Errorf("%w: %s literal against %s column %q",
				ErrTypeMismatch, a.Type(), col.Type(), col.Name())
		}
	}
	if col.Type() == storage.String && !col.DictSorted() {
		switch p.Op {
		case EQ, NE, In, Or:
			// point ops work on unsorted dictionaries; Or defers to its
			// disjuncts' own checks.
		default:
			return Ranges{}, fmt.Errorf("expr: %s on string column %q requires a sealed dictionary", p.Op, col.Name())
		}
	}

	switch p.Op {
	case IsNull, IsNotNull:
		return Ranges{}, fmt.Errorf("expr: %s has no code-interval form (use LowerColumn)", p.Op)
	case Or:
		out := Ranges{}
		for _, sub := range p.Sub {
			r, err := Lower(sub, col)
			if err != nil {
				return Ranges{}, err
			}
			out.Lo = append(out.Lo, r.Lo...)
			out.Hi = append(out.Hi, r.Hi...)
		}
		return out.Normalize(), nil
	case EQ:
		return pointRanges(col, p.Args[0], false)
	case NE:
		return pointRanges(col, p.Args[0], true)
	case In:
		out := Ranges{}
		for _, a := range p.Args {
			r, err := pointRanges(col, a, false)
			if err != nil {
				return Ranges{}, err
			}
			out.Lo = append(out.Lo, r.Lo...)
			out.Hi = append(out.Hi, r.Hi...)
		}
		return out.Normalize(), nil
	case LT:
		hi, ok, err := boundBelow(col, p.Args[0], false)
		if err != nil || !ok {
			return Ranges{}, err
		}
		return Ranges{Lo: []int64{math.MinInt64}, Hi: []int64{hi}}, nil
	case LE:
		hi, ok, err := boundBelow(col, p.Args[0], true)
		if err != nil || !ok {
			return Ranges{}, err
		}
		return Ranges{Lo: []int64{math.MinInt64}, Hi: []int64{hi}}, nil
	case GT:
		lo, ok, err := boundAbove(col, p.Args[0], false)
		if err != nil || !ok {
			return Ranges{}, err
		}
		return Ranges{Lo: []int64{lo}, Hi: []int64{math.MaxInt64}}, nil
	case GE:
		lo, ok, err := boundAbove(col, p.Args[0], true)
		if err != nil || !ok {
			return Ranges{}, err
		}
		return Ranges{Lo: []int64{lo}, Hi: []int64{math.MaxInt64}}, nil
	case Between:
		lo, okLo, err := boundAbove(col, p.Args[0], true)
		if err != nil {
			return Ranges{}, err
		}
		hi, okHi, err := boundBelow(col, p.Args[1], true)
		if err != nil {
			return Ranges{}, err
		}
		if !okLo || !okHi || lo > hi {
			return Ranges{}, nil
		}
		return Ranges{Lo: []int64{lo}, Hi: []int64{hi}}, nil
	}
	return Ranges{}, fmt.Errorf("%w: %d", ErrUnknownOp, uint8(p.Op))
}

// LowerConj lowers every comparison conjunct of c that targets column col
// and intersects the results, yielding the per-column code intervals for
// that column. Conjuncts on other columns are ignored; IS NULL conjuncts
// are rejected (use LowerColumn). An empty result means the predicate is
// unsatisfiable on this column.
func LowerConj(c Conj, col *storage.Column) (Ranges, error) {
	cp, err := LowerColumn(c, col)
	if err != nil {
		return Ranges{}, err
	}
	if cp.NullOnly {
		return Ranges{}, fmt.Errorf("expr: IS NULL on %q has no code-interval form (use LowerColumn)", col.Name())
	}
	return cp.R, nil
}

// ColPred is the physical per-column predicate: either code intervals over
// non-null rows (the normal case; kernels mask NULLs) or "exactly the NULL
// rows" (NullOnly). The two are mutually exclusive: any comparison implies
// NOT NULL in SQL, so a conjunction mixing IS NULL with comparisons is
// unsatisfiable.
type ColPred struct {
	R        Ranges
	NullOnly bool
}

// Empty reports whether the predicate provably matches nothing, before
// consulting data or metadata.
func (c ColPred) Empty() bool { return !c.NullOnly && c.R.Empty() }

// LowerColumn lowers all conjuncts of c targeting col into a ColPred.
//
//   - IS NOT NULL adds no interval constraint: kernels exclude NULL rows
//     from every comparison anyway, so it lowers to the full code range.
//   - IS NULL alone yields NullOnly.
//   - IS NULL combined with any comparison or IS NOT NULL is empty.
func LowerColumn(c Conj, col *storage.Column) (ColPred, error) {
	r := Full()
	hasNull, constrained := false, false
	for _, p := range c.Preds {
		if p.Col != col.Name() {
			continue
		}
		switch p.Op {
		case IsNull:
			if err := p.Validate(); err != nil {
				return ColPred{}, err
			}
			hasNull = true
			continue
		case IsNotNull:
			if err := p.Validate(); err != nil {
				return ColPred{}, err
			}
			constrained = true
			continue
		}
		constrained = true
		pr, err := Lower(p, col)
		if err != nil {
			return ColPred{}, err
		}
		r = r.Intersect(pr)
		if r.Empty() {
			return ColPred{R: r}, nil
		}
	}
	if hasNull {
		if constrained {
			return ColPred{}, nil // IS NULL ∧ comparison: nothing matches
		}
		return ColPred{NullOnly: true}, nil
	}
	return ColPred{R: r}, nil
}

// pointRanges lowers an equality (or its negation) to intervals.
func pointRanges(col *storage.Column, v storage.Value, negate bool) (Ranges, error) {
	code, ok, err := col.EncodeValue(v)
	if err != nil {
		return Ranges{}, err
	}
	if !ok {
		// Value absent (string not in dictionary): EQ matches nothing,
		// NE matches everything (nulls are masked elsewhere).
		if negate {
			return Full(), nil
		}
		return Ranges{}, nil
	}
	if !negate {
		return Ranges{Lo: []int64{code}, Hi: []int64{code}}, nil
	}
	out := Ranges{}
	if code != math.MinInt64 {
		out.Lo = append(out.Lo, math.MinInt64)
		out.Hi = append(out.Hi, code-1)
	}
	if code != math.MaxInt64 {
		out.Lo = append(out.Lo, code+1)
		out.Hi = append(out.Hi, math.MaxInt64)
	}
	return out, nil
}

// boundBelow returns the largest code satisfying "code < v" (inclusive
// false) or "code <= v" (inclusive true); ok=false means no code can
// satisfy the predicate (empty result).
func boundBelow(col *storage.Column, v storage.Value, inclusive bool) (int64, bool, error) {
	switch col.Type() {
	case storage.Int64, storage.Float64:
		code, _, err := col.EncodeValue(v)
		if err != nil {
			return 0, false, err
		}
		if inclusive {
			return code, true, nil
		}
		if code == math.MinInt64 {
			return 0, false, nil
		}
		return code - 1, true, nil
	case storage.String:
		d := col.Dict()
		var cut int64
		if inclusive {
			cut = d.UpperBound(v.Str()) // first code with value > v
		} else {
			cut = d.LowerBound(v.Str()) // first code with value >= v
		}
		if cut == 0 {
			return 0, false, nil
		}
		return cut - 1, true, nil
	}
	return 0, false, fmt.Errorf("expr: unsupported column type %v", col.Type())
}

// boundAbove returns the smallest code satisfying "code > v" / "code >= v".
func boundAbove(col *storage.Column, v storage.Value, inclusive bool) (int64, bool, error) {
	switch col.Type() {
	case storage.Int64, storage.Float64:
		code, _, err := col.EncodeValue(v)
		if err != nil {
			return 0, false, err
		}
		if inclusive {
			return code, true, nil
		}
		if code == math.MaxInt64 {
			return 0, false, nil
		}
		return code + 1, true, nil
	case storage.String:
		d := col.Dict()
		var cut int64
		if inclusive {
			cut = d.LowerBound(v.Str())
		} else {
			cut = d.UpperBound(v.Str())
		}
		if cut >= int64(d.Len()) {
			return 0, false, nil
		}
		return cut, true, nil
	}
	return 0, false, fmt.Errorf("expr: unsupported column type %v", col.Type())
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
