package expr

import (
	"errors"
	"math"
	"testing"

	"adskip/internal/storage"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		EQ: "=", NE: "<>", LT: "<", LE: "<=", GT: ">", GE: ">=",
		Between: "BETWEEN", In: "IN",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Fatalf("%d.String()=%q want %q", op, op.String(), want)
		}
	}
	if Op(99).String() == "" {
		t.Fatal("unknown op renders empty")
	}
}

func TestNewPredValidation(t *testing.T) {
	if _, err := NewPred("a", EQ); !errors.Is(err, ErrArity) {
		t.Fatalf("EQ with 0 args: %v", err)
	}
	if _, err := NewPred("a", Between, storage.IntValue(1)); !errors.Is(err, ErrArity) {
		t.Fatalf("BETWEEN with 1 arg: %v", err)
	}
	if _, err := NewPred("a", In); !errors.Is(err, ErrArity) {
		t.Fatalf("IN with 0 args: %v", err)
	}
	if _, err := NewPred("a", EQ, storage.NullValue(storage.Int64)); !errors.Is(err, ErrNullLiteral) {
		t.Fatalf("EQ NULL: %v", err)
	}
	if _, err := NewPred("a", Op(42), storage.IntValue(1)); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("unknown op: %v", err)
	}
	if _, err := NewPred("a", LE, storage.IntValue(1)); err != nil {
		t.Fatalf("valid pred: %v", err)
	}
}

func TestPredString(t *testing.T) {
	p := MustPred("a", Between, storage.IntValue(1), storage.IntValue(5))
	if p.String() != "a BETWEEN 1 AND 5" {
		t.Fatalf("got %q", p.String())
	}
	p = MustPred("s", In, storage.StringValue("x"), storage.StringValue("o'k"))
	if p.String() != "s IN ('x', 'o''k')" {
		t.Fatalf("got %q", p.String())
	}
	p = MustPred("a", GE, storage.IntValue(3))
	if p.String() != "a >= 3" {
		t.Fatalf("got %q", p.String())
	}
}

func TestConjHelpers(t *testing.T) {
	c := And(
		MustPred("a", GT, storage.IntValue(1)),
		MustPred("b", LT, storage.IntValue(9)),
		MustPred("a", LE, storage.IntValue(100)),
	)
	cols := c.Columns()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Fatalf("Columns=%v", cols)
	}
	by := c.ByColumn()
	if len(by["a"]) != 2 || len(by["b"]) != 1 {
		t.Fatalf("ByColumn=%v", by)
	}
	if c.String() != "a > 1 AND b < 9 AND a <= 100" {
		t.Fatalf("String=%q", c.String())
	}
	if And().String() != "TRUE" {
		t.Fatal("empty conj should render TRUE")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Conj{Preds: []Pred{{Col: "a", Op: EQ}}}
	if bad.Validate() == nil {
		t.Fatal("invalid conjunct not caught")
	}
}

func TestRangesContainsOverlapsCovers(t *testing.T) {
	r := Ranges{Lo: []int64{10, 50}, Hi: []int64{20, 60}}
	for _, c := range []int64{10, 15, 20, 50, 60} {
		if !r.Contains(c) {
			t.Fatalf("Contains(%d)=false", c)
		}
	}
	for _, c := range []int64{9, 21, 49, 61, math.MinInt64, math.MaxInt64} {
		if r.Contains(c) {
			t.Fatalf("Contains(%d)=true", c)
		}
	}
	if !r.Overlaps(0, 10) || !r.Overlaps(20, 30) || !r.Overlaps(15, 17) || !r.Overlaps(0, 100) {
		t.Fatal("Overlaps false negatives")
	}
	if r.Overlaps(21, 49) || r.Overlaps(61, 100) || r.Overlaps(0, 9) {
		t.Fatal("Overlaps false positives")
	}
	if !r.Covers(12, 18) || !r.Covers(10, 20) {
		t.Fatal("Covers false negatives")
	}
	if r.Covers(15, 55) || r.Covers(9, 20) || r.Covers(21, 22) {
		t.Fatal("Covers false positives")
	}
	if Full().Covers(math.MinInt64, math.MaxInt64) != true {
		t.Fatal("Full should cover everything")
	}
	var empty Ranges
	if !empty.Empty() || empty.Contains(0) || empty.Overlaps(0, 1) || empty.Covers(0, 0) {
		t.Fatal("empty Ranges misbehaves")
	}
}

func TestRangesIntersect(t *testing.T) {
	a := Ranges{Lo: []int64{0, 100}, Hi: []int64{50, 200}}
	b := Ranges{Lo: []int64{40, 150, 300}, Hi: []int64{120, 160, 400}}
	got := a.Intersect(b)
	want := Ranges{Lo: []int64{40, 100, 150}, Hi: []int64{50, 120, 160}}
	if got.String() != want.String() {
		t.Fatalf("Intersect got %v want %v", got, want)
	}
	if !a.Intersect(Ranges{}).Empty() {
		t.Fatal("intersect with empty not empty")
	}
	full := Full()
	if g := full.Intersect(a); g.String() != a.String() {
		t.Fatalf("full∩a = %v want %v", g, a)
	}
}

func TestRangesNormalize(t *testing.T) {
	r := Ranges{Lo: []int64{30, 5, 10, 21, 100}, Hi: []int64{40, 15, 20, 25, 90}}
	n := r.Normalize()
	// [5,15] merges with adjacent [10,20]->[5,20], [21,25] adjacent -> [5,25];
	// [30,40] separate; [100,90] dropped (empty).
	if n.String() != "[5,25] ∪ [30,40]" {
		t.Fatalf("Normalize got %v", n)
	}
	// MaxInt64 adjacency must not overflow.
	m := Ranges{Lo: []int64{0, math.MaxInt64}, Hi: []int64{math.MaxInt64, math.MaxInt64}}
	if got := m.Normalize(); got.Len() != 1 {
		t.Fatalf("MaxInt normalize got %v", got)
	}
}

func intCol(t *testing.T, vals ...int64) *storage.Column {
	t.Helper()
	c := storage.NewColumn("a", storage.Int64)
	for _, v := range vals {
		if err := c.AppendInt(v); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestLowerIntOps(t *testing.T) {
	col := intCol(t, 1, 2, 3)
	cases := []struct {
		p    Pred
		want string
	}{
		{MustPred("a", EQ, storage.IntValue(5)), "[5,5]"},
		{MustPred("a", LT, storage.IntValue(5)), "[-9223372036854775808,4]"},
		{MustPred("a", LE, storage.IntValue(5)), "[-9223372036854775808,5]"},
		{MustPred("a", GT, storage.IntValue(5)), "[6,9223372036854775807]"},
		{MustPred("a", GE, storage.IntValue(5)), "[5,9223372036854775807]"},
		{MustPred("a", Between, storage.IntValue(2), storage.IntValue(8)), "[2,8]"},
		{MustPred("a", NE, storage.IntValue(5)), "[-9223372036854775808,4] ∪ [6,9223372036854775807]"},
		{MustPred("a", In, storage.IntValue(3), storage.IntValue(1), storage.IntValue(2)), "[1,3]"},
		{MustPred("a", In, storage.IntValue(7), storage.IntValue(3)), "[3,3] ∪ [7,7]"},
	}
	for _, c := range cases {
		r, err := Lower(c.p, col)
		if err != nil {
			t.Fatalf("%v: %v", c.p, err)
		}
		if r.String() != c.want {
			t.Fatalf("%v lowered to %v want %s", c.p, r, c.want)
		}
	}
}

func TestLowerIntEdgeCases(t *testing.T) {
	col := intCol(t, 1)
	// BETWEEN with lo > hi is empty.
	r, err := Lower(MustPred("a", Between, storage.IntValue(9), storage.IntValue(2)), col)
	if err != nil || !r.Empty() {
		t.Fatalf("inverted BETWEEN: %v %v", r, err)
	}
	// x < MinInt64 is empty; x > MaxInt64 is empty.
	r, _ = Lower(MustPred("a", LT, storage.IntValue(math.MinInt64)), col)
	if !r.Empty() {
		t.Fatalf("LT MinInt: %v", r)
	}
	r, _ = Lower(MustPred("a", GT, storage.IntValue(math.MaxInt64)), col)
	if !r.Empty() {
		t.Fatalf("GT MaxInt: %v", r)
	}
	// NE MinInt64 yields a single interval.
	r, _ = Lower(MustPred("a", NE, storage.IntValue(math.MinInt64)), col)
	if r.Len() != 1 || r.Contains(math.MinInt64) {
		t.Fatalf("NE MinInt: %v", r)
	}
}

func TestLowerTypeMismatch(t *testing.T) {
	col := intCol(t, 1)
	if _, err := Lower(MustPred("a", EQ, storage.StringValue("x")), col); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("mismatch: %v", err)
	}
}

func TestLowerFloat(t *testing.T) {
	col := storage.NewColumn("f", storage.Float64)
	for _, v := range []float64{-3.5, 0, 2.25, 100} {
		if err := col.AppendFloat(v); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Lower(MustPred("f", Between, storage.FloatValue(-1), storage.FloatValue(50)), col)
	if err != nil {
		t.Fatal(err)
	}
	codes := col.Codes()
	wantIn := []bool{false, true, true, false}
	for i, w := range wantIn {
		if r.Contains(codes[i]) != w {
			t.Fatalf("row %d contains=%v want %v", i, r.Contains(codes[i]), w)
		}
	}
	// Strict < excludes the boundary value exactly.
	r, _ = Lower(MustPred("f", LT, storage.FloatValue(2.25)), col)
	if r.Contains(codes[2]) {
		t.Fatal("LT 2.25 should exclude 2.25")
	}
	if !r.Contains(codes[1]) {
		t.Fatal("LT 2.25 should include 0")
	}
}

func strCol(t *testing.T, seal bool, words ...string) *storage.Column {
	t.Helper()
	c := storage.NewColumn("s", storage.String)
	for _, w := range words {
		if err := c.AppendString(w); err != nil {
			t.Fatal(err)
		}
	}
	if seal {
		c.SealDict()
	}
	return c
}

func TestLowerStringSealed(t *testing.T) {
	col := strCol(t, true, "delta", "bravo", "foxtrot", "bravo")
	codes := col.Codes()
	words := []string{"delta", "bravo", "foxtrot", "bravo"}
	check := func(p Pred, want func(string) bool) {
		t.Helper()
		r, err := Lower(p, col)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		for i, w := range words {
			if r.Contains(codes[i]) != want(w) {
				t.Fatalf("%v: row %d (%q) contains=%v want %v", p, i, w, r.Contains(codes[i]), want(w))
			}
		}
	}
	check(MustPred("s", EQ, storage.StringValue("bravo")), func(w string) bool { return w == "bravo" })
	check(MustPred("s", NE, storage.StringValue("bravo")), func(w string) bool { return w != "bravo" })
	check(MustPred("s", LT, storage.StringValue("delta")), func(w string) bool { return w < "delta" })
	check(MustPred("s", LE, storage.StringValue("delta")), func(w string) bool { return w <= "delta" })
	check(MustPred("s", GT, storage.StringValue("cat")), func(w string) bool { return w > "cat" })
	check(MustPred("s", GE, storage.StringValue("delta")), func(w string) bool { return w >= "delta" })
	check(MustPred("s", Between, storage.StringValue("alpha"), storage.StringValue("echo")),
		func(w string) bool { return w >= "alpha" && w <= "echo" })
	// Absent string: EQ empty, NE full, range bounds still correct.
	r, _ := Lower(MustPred("s", EQ, storage.StringValue("zulu")), col)
	if !r.Empty() {
		t.Fatalf("EQ absent: %v", r)
	}
	r, _ = Lower(MustPred("s", NE, storage.StringValue("zulu")), col)
	for i := range words {
		if !r.Contains(codes[i]) {
			t.Fatal("NE absent should match all")
		}
	}
	check(MustPred("s", GT, storage.StringValue("zulu")), func(string) bool { return false })
	check(MustPred("s", LT, storage.StringValue("aaaa")), func(string) bool { return false })
}

func TestLowerStringUnsealed(t *testing.T) {
	col := strCol(t, false, "b", "a")
	// Point ops fine.
	if _, err := Lower(MustPred("s", EQ, storage.StringValue("a")), col); err != nil {
		t.Fatalf("EQ on unsealed: %v", err)
	}
	// Range ops rejected.
	if _, err := Lower(MustPred("s", LT, storage.StringValue("b")), col); err == nil {
		t.Fatal("LT on unsealed dictionary should error")
	}
}

func TestLowerConj(t *testing.T) {
	col := intCol(t, 1)
	c := And(
		MustPred("a", GE, storage.IntValue(10)),
		MustPred("a", LE, storage.IntValue(20)),
		MustPred("b", EQ, storage.IntValue(5)), // other column ignored
	)
	r, err := LowerConj(c, col)
	if err != nil {
		t.Fatal(err)
	}
	if r.String() != "[10,20]" {
		t.Fatalf("LowerConj got %v", r)
	}
	// Contradiction is empty.
	c2 := And(
		MustPred("a", LT, storage.IntValue(5)),
		MustPred("a", GT, storage.IntValue(10)),
	)
	r, err = LowerConj(c2, col)
	if err != nil || !r.Empty() {
		t.Fatalf("contradiction: %v %v", r, err)
	}
	// No conjuncts on the column -> Full.
	r, _ = LowerConj(And(MustPred("z", EQ, storage.IntValue(1))), col)
	if !r.Covers(math.MinInt64, math.MaxInt64) {
		t.Fatalf("unrelated conj: %v", r)
	}
}

func TestOrPredicates(t *testing.T) {
	or, err := NewOrPred(
		MustPred("a", LT, storage.IntValue(5)),
		MustPred("a", GT, storage.IntValue(100)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if or.String() != "(a < 5 OR a > 100)" {
		t.Fatalf("String=%q", or.String())
	}
	col := intCol(t, 1)
	r, err := Lower(or, col)
	if err != nil {
		t.Fatal(err)
	}
	if r.String() != "[-9223372036854775808,4] ∪ [101,9223372036854775807]" {
		t.Fatalf("lowered=%v", r)
	}
	// Overlapping disjuncts normalize.
	or2, _ := NewOrPred(
		MustPred("a", Between, storage.IntValue(0), storage.IntValue(10)),
		MustPred("a", Between, storage.IntValue(5), storage.IntValue(20)),
	)
	r, _ = Lower(or2, col)
	if r.String() != "[0,20]" {
		t.Fatalf("normalized=%v", r)
	}
	// Errors.
	if _, err := NewOrPred(MustPred("a", EQ, storage.IntValue(1))); !errors.Is(err, ErrArity) {
		t.Fatalf("single disjunct: %v", err)
	}
	if _, err := NewOrPred(
		MustPred("a", EQ, storage.IntValue(1)),
		MustPred("b", EQ, storage.IntValue(2)),
	); err == nil {
		t.Fatal("cross-column OR accepted")
	}
	if _, err := NewOrPred(
		MustPred("a", EQ, storage.IntValue(1)),
		MustPred("a", IsNull),
	); err == nil {
		t.Fatal("IS NULL inside OR accepted")
	}
	nested := Pred{Col: "a", Op: Or, Sub: []Pred{or, MustPred("a", EQ, storage.IntValue(7))}}
	if nested.Validate() == nil {
		t.Fatal("nested OR accepted")
	}
}
