// Package expr defines the typed predicate AST used by the query layer and
// its lowering into physical code intervals.
//
// A Pred is a single-column comparison; a Conj is a conjunction of Preds
// (the WHERE-clause shape the paper's scan-heavy workloads use). Lowering a
// Pred against a concrete column produces a Ranges value: a sorted set of
// disjoint inclusive [lo, hi] intervals over the column's int64 code space.
// Ranges is the lingua franca of the system — zone pruning asks "does the
// zone's [min,max] overlap any interval?" and scan kernels ask "is this
// code inside any interval?" — so data skipping and scanning can never
// disagree about predicate semantics.
package expr

import (
	"errors"
	"fmt"
	"strings"

	"adskip/internal/storage"
)

// Op is a comparison operator.
type Op uint8

// Comparison operators supported in predicates.
const (
	EQ        Op = iota // =
	NE                  // <>
	LT                  // <
	LE                  // <=
	GT                  // >
	GE                  // >=
	Between             // BETWEEN lo AND hi (inclusive)
	In                  // IN (v1, ..., vk)
	IsNull              // IS NULL
	IsNotNull           // IS NOT NULL
	Or                  // (p1 OR p2 OR ...): same-column disjunction, in Sub
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case Between:
		return "BETWEEN"
	case In:
		return "IN"
	case IsNull:
		return "IS NULL"
	case IsNotNull:
		return "IS NOT NULL"
	case Or:
		return "OR"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Errors returned by predicate validation and lowering.
var (
	ErrArity        = errors.New("expr: wrong number of arguments for operator")
	ErrNullLiteral  = errors.New("expr: NULL literal in comparison (use IS NULL, unsupported)")
	ErrTypeMismatch = errors.New("expr: literal type does not match column type")
	ErrUnknownOp    = errors.New("expr: unknown operator")
)

// Pred is a single-column predicate: a comparison, a null test, or a
// same-column disjunction of comparisons (Op==Or, disjuncts in Sub).
// Disjunctions across different columns would require a union of row sets
// rather than of code intervals and are intentionally unsupported — the
// conjunctive shape is what the paper's scan workloads use.
type Pred struct {
	Col  string
	Op   Op
	Args []storage.Value
	Sub  []Pred // Op==Or only
}

// NewOrPred builds a same-column disjunction of comparison predicates.
func NewOrPred(subs ...Pred) (Pred, error) {
	if len(subs) < 2 {
		return Pred{}, fmt.Errorf("%w: OR wants >=2 disjuncts", ErrArity)
	}
	p := Pred{Col: subs[0].Col, Op: Or, Sub: subs}
	if err := p.Validate(); err != nil {
		return Pred{}, err
	}
	return p, nil
}

// NewPred builds a predicate, validating arity.
func NewPred(col string, op Op, args ...storage.Value) (Pred, error) {
	p := Pred{Col: col, Op: op, Args: args}
	if err := p.Validate(); err != nil {
		return Pred{}, err
	}
	return p, nil
}

// MustPred is NewPred that panics on error; for tests and generators.
func MustPred(col string, op Op, args ...storage.Value) Pred {
	p, err := NewPred(col, op, args...)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate checks operator arity and rejects NULL literals.
func (p Pred) Validate() error {
	switch p.Op {
	case EQ, NE, LT, LE, GT, GE:
		if len(p.Args) != 1 {
			return fmt.Errorf("%w: %s wants 1 arg, got %d", ErrArity, p.Op, len(p.Args))
		}
	case Between:
		if len(p.Args) != 2 {
			return fmt.Errorf("%w: BETWEEN wants 2 args, got %d", ErrArity, len(p.Args))
		}
	case In:
		if len(p.Args) == 0 {
			return fmt.Errorf("%w: IN wants >=1 arg", ErrArity)
		}
	case IsNull, IsNotNull:
		if len(p.Args) != 0 {
			return fmt.Errorf("%w: %s wants no args, got %d", ErrArity, p.Op, len(p.Args))
		}
	case Or:
		if len(p.Sub) < 2 {
			return fmt.Errorf("%w: OR wants >=2 disjuncts", ErrArity)
		}
		for _, sub := range p.Sub {
			if sub.Col != p.Col {
				return fmt.Errorf("expr: OR mixes columns %q and %q (only same-column disjunction is supported)", p.Col, sub.Col)
			}
			switch sub.Op {
			case Or:
				return fmt.Errorf("expr: nested OR is unsupported")
			case IsNull, IsNotNull:
				return fmt.Errorf("expr: %s inside OR is unsupported", sub.Op)
			}
			if err := sub.Validate(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrUnknownOp, uint8(p.Op))
	}
	for _, a := range p.Args {
		if a.IsNull() {
			return ErrNullLiteral
		}
	}
	return nil
}

// String renders the predicate in SQL syntax.
func (p Pred) String() string {
	switch p.Op {
	case Or:
		parts := make([]string, len(p.Sub))
		for i, sub := range p.Sub {
			parts[i] = sub.String()
		}
		return "(" + strings.Join(parts, " OR ") + ")"
	case IsNull, IsNotNull:
		return fmt.Sprintf("%s %s", p.Col, p.Op)
	case Between:
		return fmt.Sprintf("%s BETWEEN %s AND %s", p.Col, lit(p.Args[0]), lit(p.Args[1]))
	case In:
		parts := make([]string, len(p.Args))
		for i, a := range p.Args {
			parts[i] = lit(a)
		}
		return fmt.Sprintf("%s IN (%s)", p.Col, strings.Join(parts, ", "))
	default:
		return fmt.Sprintf("%s %s %s", p.Col, p.Op, lit(p.Args[0]))
	}
}

func lit(v storage.Value) string {
	if v.Type() == storage.String && !v.IsNull() {
		return "'" + strings.ReplaceAll(v.Str(), "'", "''") + "'"
	}
	return v.String()
}

// Conj is a conjunction (AND) of single-column predicates. An empty Conj is
// TRUE (matches every row).
type Conj struct {
	Preds []Pred
}

// And returns a conjunction of the given predicates.
func And(preds ...Pred) Conj { return Conj{Preds: preds} }

// Validate validates every conjunct.
func (c Conj) Validate() error {
	for _, p := range c.Preds {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("%v: %w", p, err)
		}
	}
	return nil
}

// Columns returns the distinct column names referenced, in first-mention
// order.
func (c Conj) Columns() []string {
	var out []string
	seen := make(map[string]bool)
	for _, p := range c.Preds {
		if !seen[p.Col] {
			seen[p.Col] = true
			out = append(out, p.Col)
		}
	}
	return out
}

// ByColumn groups the conjuncts by column, preserving order within a
// column.
func (c Conj) ByColumn() map[string][]Pred {
	m := make(map[string][]Pred)
	for _, p := range c.Preds {
		m[p.Col] = append(m[p.Col], p)
	}
	return m
}

// String renders the conjunction in SQL syntax ("TRUE" when empty).
func (c Conj) String() string {
	if len(c.Preds) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(c.Preds))
	for i, p := range c.Preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}
