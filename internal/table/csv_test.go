package table

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"adskip/internal/storage"
)

const demoCSV = `id,price,city
1,10.5,oslo
2,,rome
3,5.25,
4,99,cairo
`

func TestReadCSVInference(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader(demoCSV), "sales", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := tb.Schema()
	if s[0].Type != storage.Int64 || s[1].Type != storage.Float64 || s[2].Type != storage.String {
		t.Fatalf("schema=%v", s)
	}
	if tb.NumRows() != 4 {
		t.Fatalf("rows=%d", tb.NumRows())
	}
	row, _ := tb.Row(1)
	if row[0].Int() != 2 || !row[1].IsNull() || row[2].Str() != "rome" {
		t.Fatalf("row1=%v", row)
	}
	// "99" in a float column parses as float.
	row, _ = tb.Row(3)
	if row[1].Float() != 99 {
		t.Fatalf("row3=%v", row)
	}
	// Empty string cell is NULL (default null literal), not "".
	row, _ = tb.Row(2)
	if !row[2].IsNull() {
		t.Fatalf("row2 city=%v", row[2])
	}
}

func TestReadCSVIntColumnStaysInt(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader("a\n1\n2\n-7\n"), "t", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema()[0].Type != storage.Int64 {
		t.Fatalf("schema=%v", tb.Schema())
	}
}

func TestReadCSVMixedBecomesString(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader("a\n1\nx\n"), "t", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema()[0].Type != storage.String {
		t.Fatalf("schema=%v", tb.Schema())
	}
	if v, _ := tb.Row(0); v[0].Str() != "1" {
		t.Fatalf("row0=%v", v)
	}
}

func TestReadCSVExplicitSchemaAndNullLiteral(t *testing.T) {
	schema := Schema{{Name: "a", Type: storage.Float64}, {Name: "b", Type: storage.String}}
	in := "a,b\n1,NA\n2.5,x\n"
	tb, err := ReadCSV(strings.NewReader(in), "t", CSVOptions{Schema: schema, NullLiteral: "NA"})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema()[0].Type != storage.Float64 {
		t.Fatal("schema not honored")
	}
	row, _ := tb.Row(0)
	if row[0].Float() != 1 || !row[1].IsNull() {
		t.Fatalf("row0=%v", row)
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	schema := Schema{{Name: "x", Type: storage.Int64}}
	tb, err := ReadCSV(strings.NewReader("5\n6\n"), "t", CSVOptions{NoHeader: true, Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows=%d", tb.NumRows())
	}
	if _, err := ReadCSV(strings.NewReader("5\n"), "t", CSVOptions{NoHeader: true}); !errors.Is(err, ErrCSV) {
		t.Fatalf("NoHeader without schema: %v", err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	// Schema/header mismatch.
	schema := Schema{{Name: "wrong", Type: storage.Int64}}
	if _, err := ReadCSV(strings.NewReader("a\n1\n"), "t", CSVOptions{Schema: schema}); !errors.Is(err, ErrCSV) {
		t.Fatalf("name mismatch: %v", err)
	}
	schema2 := Schema{{Name: "a", Type: storage.Int64}, {Name: "b", Type: storage.Int64}}
	if _, err := ReadCSV(strings.NewReader("a\n1\n"), "t", CSVOptions{Schema: schema2}); !errors.Is(err, ErrCSV) {
		t.Fatalf("arity mismatch: %v", err)
	}
	// Unparseable cell under explicit schema.
	schema3 := Schema{{Name: "a", Type: storage.Int64}}
	if _, err := ReadCSV(strings.NewReader("a\nxyz\n"), "t", CSVOptions{Schema: schema3}); !errors.Is(err, ErrCSV) {
		t.Fatalf("bad int: %v", err)
	}
	// Ragged record beyond the inference window.
	var sb strings.Builder
	sb.WriteString("a,b\n")
	for i := 0; i < 5; i++ {
		sb.WriteString("1,2\n")
	}
	sb.WriteString("3\n") // short record -> csv.Reader errors
	if _, err := ReadCSV(strings.NewReader(sb.String()), "t", CSVOptions{InferRows: 2}); !errors.Is(err, ErrCSV) {
		t.Fatalf("ragged: %v", err)
	}
	// Empty input.
	if _, err := ReadCSV(strings.NewReader(""), "t", CSVOptions{}); !errors.Is(err, ErrCSV) {
		t.Fatalf("empty: %v", err)
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader(demoCSV), "sales", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf, ""); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), "sales", CSVOptions{Schema: tb.Schema()})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tb.NumRows() {
		t.Fatalf("rows %d vs %d", back.NumRows(), tb.NumRows())
	}
	for i := 0; i < tb.NumRows(); i++ {
		a, _ := tb.Row(i)
		b, _ := back.Row(i)
		for ci := range a {
			if !a[ci].Equal(b[ci]) {
				t.Fatalf("row %d col %d: %v vs %v", i, ci, a[ci], b[ci])
			}
		}
	}
}

func TestReadCSVSemicolonDelimiter(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader("a;b\n1;x\n"), "t", CSVOptions{Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	row, _ := tb.Row(0)
	if row[0].Int() != 1 || row[1].Str() != "x" {
		t.Fatalf("row=%v", row)
	}
}
