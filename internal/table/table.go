// Package table provides the schema/table abstraction over columnar
// storage: named, typed columns of equal length, row-wise ingest for
// convenience, and a compact binary persistence format.
package table

import (
	"errors"
	"fmt"

	"adskip/internal/storage"
)

// Errors returned by table operations.
var (
	ErrColumnExists = errors.New("table: column already exists")
	ErrNoSuchColumn = errors.New("table: no such column")
	ErrRowArity     = errors.New("table: row arity does not match schema")
	ErrLengthSkew   = errors.New("table: column lengths differ")
	ErrOutOfRange   = errors.New("table: row index out of range")
)

// ColumnSpec describes one column of a schema.
type ColumnSpec struct {
	Name string
	Type storage.Type
}

// Schema is an ordered list of column specs.
type Schema []ColumnSpec

// Table is a named collection of equal-length columns.
type Table struct {
	name    string
	columns []*storage.Column
	index   map[string]int
}

// New creates an empty table with the given schema. Column names must be
// unique and non-empty.
func New(name string, schema Schema) (*Table, error) {
	t := &Table{name: name, index: make(map[string]int, len(schema))}
	for _, cs := range schema {
		if cs.Name == "" {
			return nil, fmt.Errorf("table %q: empty column name", name)
		}
		if _, dup := t.index[cs.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrColumnExists, cs.Name)
		}
		t.index[cs.Name] = len(t.columns)
		t.columns = append(t.columns, storage.NewColumn(cs.Name, cs.Type))
	}
	return t, nil
}

// MustNew is New that panics on error, for tests and generators.
func MustNew(name string, schema Schema) *Table {
	t, err := New(name, schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table's schema in column order.
func (t *Table) Schema() Schema {
	s := make(Schema, len(t.columns))
	for i, c := range t.columns {
		s[i] = ColumnSpec{Name: c.Name(), Type: c.Type()}
	}
	return s
}

// NumColumns returns the number of columns.
func (t *Table) NumColumns() int { return len(t.columns) }

// NumRows returns the number of rows (0 for a table with no columns).
func (t *Table) NumRows() int {
	if len(t.columns) == 0 {
		return 0
	}
	return t.columns[0].Len()
}

// Column returns the column with the given name.
func (t *Table) Column(name string) (*storage.Column, error) {
	i, ok := t.index[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q in table %q", ErrNoSuchColumn, name, t.name)
	}
	return t.columns[i], nil
}

// ColumnAt returns the i-th column.
func (t *Table) ColumnAt(i int) *storage.Column { return t.columns[i] }

// AppendRow appends one row; vals must match the schema in order and
// arity. NULLs are expressed with storage.NullValue. The append is atomic:
// on any error (type mismatch, sealed dictionary, NaN) columns appended so
// far are rolled back, so column lengths never skew.
func (t *Table) AppendRow(vals ...storage.Value) error {
	if len(vals) != len(t.columns) {
		return fmt.Errorf("%w: got %d values, schema has %d columns", ErrRowArity, len(vals), len(t.columns))
	}
	n := t.NumRows()
	for i, v := range vals {
		if err := t.columns[i].AppendValue(v); err != nil {
			for j := 0; j < i; j++ {
				t.columns[j].Truncate(n)
			}
			return fmt.Errorf("column %q: %w", t.columns[i].Name(), err)
		}
	}
	return nil
}

// ValidateRow type-checks a row without mutating the table. Use before
// AppendRow when ingesting untrusted data so failed appends cannot skew
// column lengths.
func (t *Table) ValidateRow(vals ...storage.Value) error {
	if len(vals) != len(t.columns) {
		return fmt.Errorf("%w: got %d values, schema has %d columns", ErrRowArity, len(vals), len(t.columns))
	}
	for i, v := range vals {
		if v.IsNull() {
			continue
		}
		if v.Type() != t.columns[i].Type() {
			return fmt.Errorf("column %q: %w", t.columns[i].Name(), storage.ErrTypeMismatch)
		}
	}
	return nil
}

// Row materializes row i as dynamic values in schema order.
func (t *Table) Row(i int) ([]storage.Value, error) {
	if i < 0 || i >= t.NumRows() {
		return nil, fmt.Errorf("%w: %d of %d", ErrOutOfRange, i, t.NumRows())
	}
	out := make([]storage.Value, len(t.columns))
	for ci, c := range t.columns {
		out[ci] = c.Value(i)
	}
	return out, nil
}

// SealDicts seals every string column's dictionary (order-preserving
// codes). Call after bulk load, before building skippers on string
// columns.
func (t *Table) SealDicts() {
	for _, c := range t.columns {
		c.SealDict()
	}
}

// CheckInvariants verifies that all columns have equal length; the engine
// calls this in tests and after bulk mutations.
func (t *Table) CheckInvariants() error {
	if len(t.columns) == 0 {
		return nil
	}
	n := t.columns[0].Len()
	for _, c := range t.columns[1:] {
		if c.Len() != n {
			return fmt.Errorf("%w: %q has %d rows, %q has %d", ErrLengthSkew, t.columns[0].Name(), n, c.Name(), c.Len())
		}
	}
	return nil
}
