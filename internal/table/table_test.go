package table

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"adskip/internal/storage"
)

func demoSchema() Schema {
	return Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "price", Type: storage.Float64},
		{Name: "city", Type: storage.String},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("t", Schema{{Name: "", Type: storage.Int64}}); err == nil {
		t.Fatal("empty column name accepted")
	}
	if _, err := New("t", Schema{{Name: "a", Type: storage.Int64}, {Name: "a", Type: storage.Float64}}); !errors.Is(err, ErrColumnExists) {
		t.Fatalf("duplicate column: %v", err)
	}
	tb, err := New("t", demoSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tb.Name() != "t" || tb.NumColumns() != 3 || tb.NumRows() != 0 {
		t.Fatal("metadata wrong")
	}
	s := tb.Schema()
	if len(s) != 3 || s[2].Name != "city" || s[2].Type != storage.String {
		t.Fatalf("Schema=%v", s)
	}
}

func TestAppendRowAndRead(t *testing.T) {
	tb := MustNew("t", demoSchema())
	rows := [][]storage.Value{
		{storage.IntValue(1), storage.FloatValue(9.5), storage.StringValue("oslo")},
		{storage.IntValue(2), storage.NullValue(storage.Float64), storage.StringValue("rome")},
	}
	for _, r := range rows {
		if err := tb.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows=%d", tb.NumRows())
	}
	got, err := tb.Row(1)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Equal(storage.IntValue(2)) || !got[1].IsNull() || got[2].Str() != "rome" {
		t.Fatalf("Row(1)=%v", got)
	}
	if _, err := tb.Row(5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Row(5): %v", err)
	}
	if _, err := tb.Row(-1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Row(-1): %v", err)
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendRowErrors(t *testing.T) {
	tb := MustNew("t", demoSchema())
	if err := tb.AppendRow(storage.IntValue(1)); !errors.Is(err, ErrRowArity) {
		t.Fatalf("arity: %v", err)
	}
	bad := []storage.Value{storage.IntValue(1), storage.StringValue("x"), storage.StringValue("y")}
	if err := tb.ValidateRow(bad...); !errors.Is(err, storage.ErrTypeMismatch) {
		t.Fatalf("ValidateRow: %v", err)
	}
	good := []storage.Value{storage.IntValue(1), storage.NullValue(storage.Float64), storage.StringValue("y")}
	if err := tb.ValidateRow(good...); err != nil {
		t.Fatalf("ValidateRow good row: %v", err)
	}
}

func TestColumnLookup(t *testing.T) {
	tb := MustNew("t", demoSchema())
	c, err := tb.Column("price")
	if err != nil || c.Type() != storage.Float64 {
		t.Fatalf("Column: %v %v", c, err)
	}
	if _, err := tb.Column("nope"); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("missing column: %v", err)
	}
	if tb.ColumnAt(0).Name() != "id" {
		t.Fatal("ColumnAt wrong")
	}
}

func TestSealDicts(t *testing.T) {
	tb := MustNew("t", demoSchema())
	tb.AppendRow(storage.IntValue(1), storage.FloatValue(1), storage.StringValue("zeta"))
	tb.AppendRow(storage.IntValue(2), storage.FloatValue(2), storage.StringValue("alpha"))
	tb.SealDicts()
	c, _ := tb.Column("city")
	if !c.DictSorted() {
		t.Fatal("dict not sealed")
	}
	if c.Value(0).Str() != "zeta" || c.Value(1).Str() != "alpha" {
		t.Fatal("values corrupted by seal")
	}
}

func roundTrip(t *testing.T, tb *Table) *Table {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestCodecRoundTrip(t *testing.T) {
	tb := MustNew("sales", demoSchema())
	tb.AppendRow(storage.IntValue(10), storage.FloatValue(-2.5), storage.StringValue("oslo"))
	tb.AppendRow(storage.NullValue(storage.Int64), storage.FloatValue(7), storage.StringValue("rome"))
	tb.AppendRow(storage.IntValue(30), storage.NullValue(storage.Float64), storage.StringValue("oslo"))
	tb.SealDicts()

	got := roundTrip(t, tb)
	if got.Name() != "sales" || got.NumRows() != 3 || got.NumColumns() != 3 {
		t.Fatalf("shape: %s %d %d", got.Name(), got.NumRows(), got.NumColumns())
	}
	for i := 0; i < 3; i++ {
		a, _ := tb.Row(i)
		b, _ := got.Row(i)
		for ci := range a {
			if !a[ci].Equal(b[ci]) {
				t.Fatalf("row %d col %d: %v vs %v", i, ci, a[ci], b[ci])
			}
		}
	}
	c, _ := got.Column("city")
	if !c.DictSorted() {
		t.Fatal("seal state not preserved")
	}
	// Codes must be identical (not just values) so skippers built before a
	// save remain valid after a load.
	origCity, _ := tb.Column("city")
	for i, code := range origCity.Codes() {
		if c.Codes()[i] != code {
			t.Fatal("string codes changed across round trip")
		}
	}
}

func TestCodecUnsealedDict(t *testing.T) {
	tb := MustNew("t", Schema{{Name: "s", Type: storage.String}})
	tb.AppendRow(storage.StringValue("b"))
	tb.AppendRow(storage.StringValue("a"))
	got := roundTrip(t, tb)
	c, _ := got.Column("s")
	if c.DictSorted() {
		t.Fatal("unsealed dict came back sealed")
	}
	if c.Value(0).Str() != "b" || c.Value(1).Str() != "a" {
		t.Fatal("values wrong")
	}
}

func TestCodecEmptyTable(t *testing.T) {
	tb := MustNew("empty", demoSchema())
	got := roundTrip(t, tb)
	if got.NumRows() != 0 || got.NumColumns() != 3 {
		t.Fatal("empty table round trip wrong")
	}
}

func TestCodecCorruption(t *testing.T) {
	tb := MustNew("t", demoSchema())
	tb.AppendRow(storage.IntValue(1), storage.FloatValue(2), storage.StringValue("x"))
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a payload byte -> checksum error.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if _, err := Read(bytes.NewReader(corrupt)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("flipped byte: %v", err)
	}

	// Damage the magic -> bad magic.
	corrupt = append([]byte(nil), raw...)
	corrupt[0] = 'X'
	if _, err := Read(bytes.NewReader(corrupt)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}

	// Truncate -> bad magic or read error, never a panic.
	for _, cut := range []int{0, 5, len(raw) / 2, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncated to %d bytes: no error", cut)
		}
	}
}

// Property: arbitrary tables round-trip exactly.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := MustNew("q", demoSchema())
		n := rng.Intn(150)
		for i := 0; i < n; i++ {
			var vals []storage.Value
			if rng.Intn(12) == 0 {
				vals = append(vals, storage.NullValue(storage.Int64))
			} else {
				vals = append(vals, storage.IntValue(rng.Int63n(1000)-500))
			}
			if rng.Intn(12) == 0 {
				vals = append(vals, storage.NullValue(storage.Float64))
			} else {
				vals = append(vals, storage.FloatValue(rng.NormFloat64()*100))
			}
			if rng.Intn(12) == 0 {
				vals = append(vals, storage.NullValue(storage.String))
			} else {
				vals = append(vals, storage.StringValue(string(rune('a'+rng.Intn(26)))))
			}
			if err := tb.AppendRow(vals...); err != nil {
				return false
			}
		}
		if rng.Intn(2) == 0 {
			tb.SealDicts()
		}
		var buf bytes.Buffer
		if _, err := tb.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.NumRows() != tb.NumRows() {
			return false
		}
		for i := 0; i < n; i++ {
			a, _ := tb.Row(i)
			b, _ := got.Row(i)
			for ci := range a {
				if !a[ci].Equal(b[ci]) {
					return false
				}
			}
		}
		return got.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
