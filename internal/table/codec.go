package table

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"adskip/internal/faultinject"
	"adskip/internal/storage"
)

// Binary table format (little-endian):
//
//	magic "ADSKTBL1" (8 bytes)
//	name: u32 len + bytes
//	ncols: u32
//	per column:
//	  name: u32 len + bytes
//	  type: u8
//	  nrows: u64
//	  codes: nrows * i64
//	  nullCount: u64, then nullCount * u64 row indices
//	  dict (String only): sealed u8, u32 count, count * (u32 len + bytes)
//	crc32 (IEEE) of everything above: u32
//
// The format is a bulk snapshot: load produces a table whose string
// dictionaries preserve their seal state and code assignment exactly.

var (
	magic = [8]byte{'A', 'D', 'S', 'K', 'T', 'B', 'L', '1'}

	// ErrBadMagic indicates the stream is not a table snapshot.
	ErrBadMagic = errors.New("table: bad magic (not an adskip table snapshot)")
	// ErrChecksum indicates the snapshot is corrupt.
	ErrChecksum = errors.New("table: checksum mismatch (corrupt snapshot)")
)

const maxSaneLen = 1 << 31 // guards length-prefixed reads against corrupt headers

// WriteTo serializes the table to w. It returns the number of payload
// bytes written.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	crc := crc32.NewIEEE()
	cw := &countWriter{w: io.MultiWriter(w, crc)}
	bw := bufio.NewWriter(cw)

	if _, err := bw.Write(magic[:]); err != nil {
		return cw.n, err
	}
	writeString(bw, t.name)
	writeU32(bw, uint32(len(t.columns)))
	for _, c := range t.columns {
		writeString(bw, c.Name())
		bw.WriteByte(byte(c.Type()))
		codes := c.Codes()
		writeU64(bw, uint64(len(codes)))
		var buf [8]byte
		for _, code := range codes {
			binary.LittleEndian.PutUint64(buf[:], uint64(code))
			bw.Write(buf[:])
		}
		// Nulls as a sparse index list.
		var nullRows []int
		if nulls := c.Nulls(); nulls != nil {
			nullRows = nulls.AppendSetTo(nil)
		}
		writeU64(bw, uint64(len(nullRows)))
		for _, r := range nullRows {
			writeU64(bw, uint64(r))
		}
		if c.Type() == storage.String {
			d := c.Dict()
			if d.Sealed() {
				bw.WriteByte(1)
			} else {
				bw.WriteByte(0)
			}
			vals := d.Values()
			writeU32(bw, uint32(len(vals)))
			for _, s := range vals {
				writeString(bw, s)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	// Trailing checksum (not itself checksummed). The chaos hook flips a
	// checksum byte so loads of the snapshot exercise the ErrChecksum
	// failure-atomic path.
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	faultinject.Corrupt(faultinject.CodecCorrupt, sum[:])
	if _, err := w.Write(sum[:]); err != nil {
		return cw.n, err
	}
	return cw.n + 4, nil
}

// Read deserializes a table snapshot produced by WriteTo, verifying the
// checksum before parsing (a snapshot is an in-memory-scale artifact, so
// buffering it whole is acceptable and makes corruption detection exact).
func Read(r io.Reader) (*Table, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("table: reading snapshot: %w", err)
	}
	if len(raw) < len(magic)+4 {
		return nil, ErrBadMagic
	}
	payload, sumBytes := raw[:len(raw)-4], raw[len(raw)-4:]
	if [8]byte(payload[:8]) != magic {
		return nil, ErrBadMagic
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(sumBytes) {
		return nil, ErrChecksum
	}
	br := bufio.NewReader(bytes.NewReader(payload[8:]))
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	ncols, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if ncols > 1<<20 {
		return nil, fmt.Errorf("table: implausible column count %d: %w", ncols, ErrChecksum)
	}
	t := &Table{name: name, index: make(map[string]int, ncols)}
	var prevRows uint64
	for ci := uint32(0); ci < ncols; ci++ {
		cname, err := readString(br)
		if err != nil {
			return nil, err
		}
		tb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		typ := storage.Type(tb)
		if typ != storage.Int64 && typ != storage.Float64 && typ != storage.String {
			return nil, fmt.Errorf("table: column %q has unknown type %d: %w", cname, tb, ErrChecksum)
		}
		nrows, err := readU64(br)
		if err != nil {
			return nil, err
		}
		if nrows > maxSaneLen {
			return nil, fmt.Errorf("table: implausible row count %d: %w", nrows, ErrChecksum)
		}
		if ci > 0 && nrows != prevRows {
			return nil, fmt.Errorf("%w in snapshot", ErrLengthSkew)
		}
		prevRows = nrows
		codes := make([]int64, nrows)
		buf := make([]byte, 8*1024)
		for read := uint64(0); read < nrows; {
			chunk := uint64(len(buf) / 8)
			if nrows-read < chunk {
				chunk = nrows - read
			}
			if _, err := io.ReadFull(br, buf[:chunk*8]); err != nil {
				return nil, fmt.Errorf("table: reading codes: %w", err)
			}
			for k := uint64(0); k < chunk; k++ {
				codes[read+k] = int64(binary.LittleEndian.Uint64(buf[k*8:]))
			}
			read += chunk
		}
		nNulls, err := readU64(br)
		if err != nil {
			return nil, err
		}
		if nNulls > nrows {
			return nil, fmt.Errorf("table: null count %d exceeds rows %d: %w", nNulls, nrows, ErrChecksum)
		}
		nullRows := make([]uint64, nNulls)
		for k := range nullRows {
			v, err := readU64(br)
			if err != nil {
				return nil, err
			}
			if v >= nrows {
				return nil, fmt.Errorf("table: null row %d out of range: %w", v, ErrChecksum)
			}
			nullRows[k] = v
		}
		col, err := rebuildColumn(cname, typ, codes, nullRows, br)
		if err != nil {
			return nil, err
		}
		if _, dup := t.index[cname]; dup {
			return nil, fmt.Errorf("%w: %q in snapshot", ErrColumnExists, cname)
		}
		t.index[cname] = len(t.columns)
		t.columns = append(t.columns, col)
	}
	return t, nil
}

// rebuildColumn reconstructs a column from raw codes, null rows, and (for
// strings) the serialized dictionary.
func rebuildColumn(name string, typ storage.Type, codes []int64, nullRows []uint64, br *bufio.Reader) (*storage.Column, error) {
	col := storage.NewColumn(name, typ)
	switch typ {
	case storage.Int64, storage.Float64:
		nullSet := make(map[uint64]bool, len(nullRows))
		for _, r := range nullRows {
			nullSet[r] = true
		}
		for i, code := range codes {
			if nullSet[uint64(i)] {
				col.AppendNull()
				continue
			}
			if typ == storage.Int64 {
				if err := col.AppendInt(code); err != nil {
					return nil, err
				}
			} else {
				if err := col.AppendFloat(storage.DecodeFloat64(code)); err != nil {
					return nil, err
				}
			}
		}
	case storage.String:
		sealed, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		count, err := readU32(br)
		if err != nil {
			return nil, err
		}
		vals := make([]string, count)
		for i := range vals {
			vals[i], err = readString(br)
			if err != nil {
				return nil, err
			}
		}
		nullSet := make(map[uint64]bool, len(nullRows))
		for _, r := range nullRows {
			nullSet[r] = true
		}
		for i, code := range codes {
			if nullSet[uint64(i)] {
				col.AppendNull()
				continue
			}
			if code < 0 || code >= int64(len(vals)) {
				return nil, fmt.Errorf("table: string code %d out of dictionary range %d: %w", code, len(vals), ErrChecksum)
			}
			if err := col.AppendString(vals[code]); err != nil {
				return nil, err
			}
		}
		if sealed == 1 {
			col.SealDict()
		}
	}
	return col, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeU32(w *bufio.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeU64(w *bufio.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

func writeString(w *bufio.Writer, s string) {
	writeU32(w, uint32(len(s)))
	w.WriteString(s)
}

func readU32(r *bufio.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readU64(r *bufio.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxSaneLen {
		return "", fmt.Errorf("table: implausible string length %d: %w", n, ErrChecksum)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
