package table

import (
	"bytes"
	"testing"

	"adskip/internal/storage"
)

// FuzzRead feeds arbitrary bytes to the snapshot decoder: it must reject
// garbage with an error, never panic, and never fabricate a table from
// corrupt input that then violates basic invariants.
func FuzzRead(f *testing.F) {
	// Seed with a genuine snapshot so mutations explore deep decoder paths.
	tb := MustNew("seed", Schema{
		{Name: "a", Type: storage.Int64},
		{Name: "s", Type: storage.String},
	})
	tb.AppendRow(storage.IntValue(1), storage.StringValue("x"))
	tb.AppendRow(storage.NullValue(storage.Int64), storage.StringValue("y"))
	tb.SealDicts()
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("ADSKTBL1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.CheckInvariants(); err != nil {
			t.Fatalf("decoded table violates invariants: %v", err)
		}
	})
}

// FuzzReadCSV feeds arbitrary text to the CSV loader.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,x\n")
	f.Add("a\n\n")
	f.Add("")
	f.Add("a,b\n1\n2,3,4\n")
	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadCSV(bytes.NewReader([]byte(data)), "t", CSVOptions{})
		if err != nil {
			return
		}
		if err := got.CheckInvariants(); err != nil {
			t.Fatalf("loaded CSV violates invariants: %v", err)
		}
	})
}
