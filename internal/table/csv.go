package table

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"adskip/internal/storage"
)

// CSVOptions configures CSV ingest.
type CSVOptions struct {
	// Comma is the field delimiter (default ',').
	Comma rune
	// NoHeader treats the first record as data; columns are named c0, c1,
	// … and the schema must then be provided explicitly.
	NoHeader bool
	// Schema overrides type inference. With a header, names must match
	// the header; without one, it defines both names and types.
	Schema Schema
	// NullLiteral is the spelling of NULL cells (default: empty string).
	NullLiteral string
	// InferRows is how many records type inference examines before
	// committing to a schema (default 1000). Inference prefers the
	// narrowest type that parses every sampled non-null cell:
	// BIGINT ⊂ DOUBLE ⊂ VARCHAR.
	InferRows int
}

func (o CSVOptions) withDefaults() CSVOptions {
	if o.Comma == 0 {
		o.Comma = ','
	}
	if o.InferRows <= 0 {
		o.InferRows = 1000
	}
	return o
}

// ErrCSV wraps CSV ingest errors.
var ErrCSV = errors.New("table: csv")

// ReadCSV loads a CSV stream into a new table. Types are inferred from a
// prefix of the data unless opts.Schema is given.
func ReadCSV(r io.Reader, name string, opts CSVOptions) (*Table, error) {
	opts = opts.withDefaults()
	cr := csv.NewReader(r)
	cr.Comma = opts.Comma
	cr.ReuseRecord = false

	var header []string
	if !opts.NoHeader {
		rec, err := cr.Read()
		if err != nil {
			return nil, fmt.Errorf("%w: reading header: %v", ErrCSV, err)
		}
		header = rec
	}

	// Buffer the inference prefix.
	var buffered [][]string
	for len(buffered) < opts.InferRows {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCSV, err)
		}
		buffered = append(buffered, rec)
	}

	schema := opts.Schema
	if schema == nil {
		if opts.NoHeader {
			return nil, fmt.Errorf("%w: NoHeader requires an explicit Schema", ErrCSV)
		}
		var err error
		schema, err = inferSchema(header, buffered, opts.NullLiteral)
		if err != nil {
			return nil, err
		}
	} else if header != nil {
		if len(schema) != len(header) {
			return nil, fmt.Errorf("%w: schema has %d columns, header %d", ErrCSV, len(schema), len(header))
		}
		for i, cs := range schema {
			if cs.Name != header[i] {
				return nil, fmt.Errorf("%w: schema column %d is %q, header says %q", ErrCSV, i, cs.Name, header[i])
			}
		}
	}

	t, err := New(name, schema)
	if err != nil {
		return nil, err
	}
	appendRec := func(rec []string) error {
		if len(rec) != len(schema) {
			return fmt.Errorf("%w: record has %d fields, schema %d", ErrCSV, len(rec), len(schema))
		}
		vals := make([]storage.Value, len(rec))
		for i, cell := range rec {
			v, err := parseCell(cell, schema[i].Type, opts.NullLiteral)
			if err != nil {
				return fmt.Errorf("%w: column %q: %v", ErrCSV, schema[i].Name, err)
			}
			vals[i] = v
		}
		return t.AppendRow(vals...)
	}
	for _, rec := range buffered {
		if err := appendRec(rec); err != nil {
			return nil, err
		}
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCSV, err)
		}
		if err := appendRec(rec); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// inferSchema picks the narrowest type parsing every sampled non-null cell
// of each column.
func inferSchema(header []string, sample [][]string, nullLit string) (Schema, error) {
	if len(header) == 0 {
		return nil, fmt.Errorf("%w: empty header", ErrCSV)
	}
	schema := make(Schema, len(header))
	for ci, name := range header {
		canInt, canFloat, sawValue := true, true, false
		for _, rec := range sample {
			if ci >= len(rec) || rec[ci] == nullLit {
				continue
			}
			sawValue = true
			cell := rec[ci]
			if canInt {
				if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
					canInt = false
				}
			}
			if !canInt && canFloat {
				if _, err := strconv.ParseFloat(cell, 64); err != nil {
					canFloat = false
				}
			}
			if !canInt && !canFloat {
				break
			}
		}
		typ := storage.String
		switch {
		case !sawValue:
			// All-null or empty sample: strings are the safe choice.
			typ = storage.String
		case canInt:
			typ = storage.Int64
		case canFloat:
			typ = storage.Float64
		}
		schema[ci] = ColumnSpec{Name: name, Type: typ}
	}
	return schema, nil
}

// parseCell converts one CSV cell to a typed value.
func parseCell(cell string, typ storage.Type, nullLit string) (storage.Value, error) {
	if cell == nullLit {
		return storage.NullValue(typ), nil
	}
	switch typ {
	case storage.Int64:
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return storage.Value{}, fmt.Errorf("bad BIGINT %q", cell)
		}
		return storage.IntValue(n), nil
	case storage.Float64:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return storage.Value{}, fmt.Errorf("bad DOUBLE %q", cell)
		}
		return storage.FloatValue(f), nil
	case storage.String:
		return storage.StringValue(cell), nil
	}
	return storage.Value{}, fmt.Errorf("unknown type %v", typ)
}

// WriteCSV writes the table as CSV with a header row. NULL cells render as
// nullLit (pass "" for empty cells).
func (t *Table) WriteCSV(w io.Writer, nullLit string) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.NumColumns())
	for i, cs := range t.Schema() {
		header[i] = cs.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, t.NumColumns())
	for r := 0; r < t.NumRows(); r++ {
		for ci := 0; ci < t.NumColumns(); ci++ {
			v := t.ColumnAt(ci).Value(r)
			if v.IsNull() {
				rec[ci] = nullLit
			} else {
				rec[ci] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
