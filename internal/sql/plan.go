package sql

import (
	"context"
	"errors"
	"fmt"
	"time"

	"adskip/internal/engine"
	"adskip/internal/expr"
	"adskip/internal/obs"
	"adskip/internal/stats"
	"adskip/internal/storage"
	"adskip/internal/table"
)

// Planner errors.
var (
	ErrNoSuchTable = errors.New("sql: no such table")
)

// Executor is what the SQL layer needs from a query backend: a schema to
// plan against and the query/explain entry points. *engine.Engine is the
// single-engine implementation; *shard.Manager implements the same
// surface over a scatter-gather of per-shard engines, so everything
// SQL-routed (server, facade, CLIs) works unchanged on sharded tables.
type Executor interface {
	Table() *table.Table
	QueryContext(ctx context.Context, q engine.Query) (*engine.Result, error)
	Explain(q engine.Query) ([]string, error)
	ExplainAnalyzeContext(ctx context.Context, q engine.Query) ([]string, *engine.Result, error)
	WorkloadStats() *stats.Table
}

// Plan binds a parsed statement against a table's schema and lowers it to
// an engine query: SELECT * expands to the full column list, and integer
// literals compared against DOUBLE columns are coerced to floats.
func Plan(stmt Statement, tbl *table.Table) (engine.Query, error) {
	if stmt.Table != tbl.Name() {
		return engine.Query{}, fmt.Errorf("%w: %q (planning against %q)", ErrNoSuchTable, stmt.Table, tbl.Name())
	}
	q := engine.Query{Aggs: stmt.Aggs, GroupBy: stmt.GroupBy, OrderBy: stmt.OrderBy, OrderDesc: stmt.OrderDesc, Limit: stmt.Limit}
	switch {
	case stmt.Star:
		if stmt.GroupBy != "" {
			return engine.Query{}, fmt.Errorf("%w: SELECT * with GROUP BY", ErrSyntax)
		}
		for _, cs := range tbl.Schema() {
			q.Select = append(q.Select, cs.Name)
		}
	default:
		q.Select = stmt.Cols
	}
	// Bind predicates: validate columns exist and coerce literal types.
	for _, p := range stmt.Where.Preds {
		col, err := tbl.Column(p.Col)
		if err != nil {
			return engine.Query{}, err
		}
		bound, err := bindPred(p, col.Type())
		if err != nil {
			return engine.Query{}, err
		}
		q.Where.Preds = append(q.Where.Preds, bound)
	}
	return q, nil
}

// bindPred coerces a predicate's literals (recursing into OR groups) to
// the column type.
func bindPred(p expr.Pred, typ storage.Type) (expr.Pred, error) {
	bound := expr.Pred{Col: p.Col, Op: p.Op}
	for _, arg := range p.Args {
		v, err := coerce(arg, typ)
		if err != nil {
			return expr.Pred{}, fmt.Errorf("predicate on %q: %w", p.Col, err)
		}
		bound.Args = append(bound.Args, v)
	}
	for _, sub := range p.Sub {
		bs, err := bindPred(sub, typ)
		if err != nil {
			return expr.Pred{}, err
		}
		bound.Sub = append(bound.Sub, bs)
	}
	return bound, nil
}

// coerce converts a literal to the column type where SQL would: integer
// literals widen to DOUBLE. Any other mismatch is an error.
func coerce(v storage.Value, want storage.Type) (storage.Value, error) {
	if v.Type() == want {
		return v, nil
	}
	if v.Type() == storage.Int64 && want == storage.Float64 {
		return storage.FloatValue(float64(v.Int())), nil
	}
	return storage.Value{}, fmt.Errorf("%w: %s literal vs %s column", expr.ErrTypeMismatch, v.Type(), want)
}

// Exec parses, plans, and executes a SQL string against an engine. This is
// the one-call convenience path used by the demo REPL and examples.
// EXPLAIN statements return the plan as rows of a single "plan" column.
func Exec(e Executor, query string) (*engine.Result, error) {
	return ExecContext(context.Background(), e, query)
}

// ExecContext is Exec under a context: execution honors ctx's cancellation
// and deadline at the engine's cooperative checkpoints.
func ExecContext(ctx context.Context, e Executor, query string) (*engine.Result, error) {
	t0 := time.Now()
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	parse := time.Since(t0)
	res, err := ExecParsedContext(ctx, e, stmt)
	// Parsing happens before the engine's trace exists, so its span is
	// slotted in front of the plan/prune/scan children after the fact.
	if res != nil && res.Trace != nil && res.Trace.Root != nil {
		res.Trace.Root.AttachFirst(&obs.Span{Name: "parse", Start: t0, Duration: parse})
	}
	return res, err
}

// ExecParsed plans and executes an already-parsed statement (used by
// multi-table catalogs that route by stmt.Table before executing).
func ExecParsed(e Executor, stmt Statement) (*engine.Result, error) {
	return ExecParsedContext(context.Background(), e, stmt)
}

// ExecParsedContext is ExecParsed under a context. When the engine has a
// workload stats table, the statement's fingerprint is stamped onto the
// context here (unless the caller — e.g. the network server's statement
// cache — already did), so every SQL-routed query is attributed to its
// template.
func ExecParsedContext(ctx context.Context, e Executor, stmt Statement) (*engine.Result, error) {
	q, err := Plan(stmt, e.Table())
	if err != nil {
		return nil, err
	}
	if e.WorkloadStats() != nil && obs.TemplateFromContext(ctx) == "" {
		ctx = obs.WithTemplate(ctx, Fingerprint(stmt))
	}
	if stmt.Explain {
		var lines []string
		if stmt.Analyze {
			// EXPLAIN ANALYZE executes the query and reports actuals;
			// the rendered plan replaces the data result.
			lines, _, err = e.ExplainAnalyzeContext(ctx, q)
		} else {
			lines, err = e.Explain(q)
		}
		if err != nil {
			return nil, err
		}
		res := &engine.Result{Columns: []string{"plan"}, Types: []storage.Type{storage.String}}
		for _, l := range lines {
			res.Rows = append(res.Rows, []storage.Value{storage.StringValue(l)})
		}
		res.Count = len(res.Rows)
		return res, nil
	}
	return e.QueryContext(ctx, q)
}
