package sql

import (
	"errors"
	"strings"
	"testing"

	"adskip/internal/adaptive"
	"adskip/internal/engine"
	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
)

func TestParseIsNull(t *testing.T) {
	s, err := Parse("SELECT COUNT(*) FROM t WHERE a IS NULL AND b IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Where.Preds) != 2 {
		t.Fatalf("preds=%v", s.Where.Preds)
	}
	if s.Where.Preds[0].Op != expr.IsNull || s.Where.Preds[1].Op != expr.IsNotNull {
		t.Fatalf("ops=%v %v", s.Where.Preds[0].Op, s.Where.Preds[1].Op)
	}
	// Canonical round trip.
	rendered := s.String()
	if rendered != "SELECT COUNT(*) FROM t WHERE a IS NULL AND b IS NOT NULL" {
		t.Fatalf("rendered=%q", rendered)
	}
	if _, err := Parse(rendered); err != nil {
		t.Fatal(err)
	}
}

func TestParseIsNullErrors(t *testing.T) {
	for _, q := range []string{
		"SELECT a FROM t WHERE a IS",
		"SELECT a FROM t WHERE a IS NOT",
		"SELECT a FROM t WHERE a IS 5",
		"SELECT a FROM t WHERE a IS NOT 5",
	} {
		if _, err := Parse(q); !errors.Is(err, ErrSyntax) {
			t.Fatalf("%q: %v", q, err)
		}
	}
}

func TestExecIsNullEndToEnd(t *testing.T) {
	tb := table.MustNew("t", table.Schema{
		{Name: "a", Type: storage.Int64},
		{Name: "b", Type: storage.Float64},
	})
	tb.AppendRow(storage.IntValue(1), storage.FloatValue(1.5))
	tb.AppendRow(storage.IntValue(2), storage.NullValue(storage.Float64))
	tb.AppendRow(storage.IntValue(3), storage.NullValue(storage.Float64))
	e := engine.New(tb, engine.Options{Policy: engine.PolicyAdaptive})
	if err := e.EnableSkipping(); err != nil {
		t.Fatal(err)
	}
	res, err := Exec(e, "SELECT COUNT(*) FROM t WHERE b IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggs[0].Equal(storage.IntValue(2)) {
		t.Fatalf("count=%v", res.Aggs[0])
	}
	res, err = Exec(e, "SELECT a FROM t WHERE b IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("rows=%v", res.Rows)
	}
}

func TestGroupBySQL(t *testing.T) {
	tb := table.MustNew("t", table.Schema{
		{Name: "city", Type: storage.String},
		{Name: "amt", Type: storage.Int64},
	})
	for _, r := range []struct {
		c string
		a int64
	}{{"b", 1}, {"a", 2}, {"b", 3}, {"a", 4}, {"c", 5}} {
		tb.AppendRow(storage.StringValue(r.c), storage.IntValue(r.a))
	}
	e := engine.New(tb, engine.Options{Policy: engine.PolicyAdaptive})
	if err := e.EnableSkipping(); err != nil {
		t.Fatal(err)
	}
	res, err := Exec(e, "SELECT city, COUNT(*), SUM(amt) FROM t WHERE amt > 1 GROUP BY city LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%v", res.Rows)
	}
	if res.Rows[0][0].Str() != "a" || res.Rows[0][2].Int() != 6 {
		t.Fatalf("group a=%v", res.Rows[0])
	}
	if res.Rows[1][0].Str() != "b" || res.Rows[1][1].Int() != 1 {
		t.Fatalf("group b=%v", res.Rows[1])
	}
	// Round trip.
	s, err := Parse("SELECT city, COUNT(*) FROM t GROUP BY city")
	if err != nil || s.GroupBy != "city" {
		t.Fatalf("parse: %v %q", err, s.GroupBy)
	}
	if s.String() != "SELECT city, COUNT(*) FROM t GROUP BY city" {
		t.Fatalf("render=%q", s.String())
	}
	// Errors.
	if _, err := Parse("SELECT a, SUM(b) FROM t"); !errors.Is(err, ErrSyntax) {
		t.Fatalf("mix without group: %v", err)
	}
	if _, err := Parse("SELECT a FROM t GROUP BY"); !errors.Is(err, ErrSyntax) {
		t.Fatalf("dangling group by: %v", err)
	}
	if _, err := Exec(e, "SELECT * FROM t GROUP BY city"); err == nil {
		t.Fatal("star with group accepted")
	}
}

func TestExplainSQL(t *testing.T) {
	tb := table.MustNew("t", table.Schema{
		{Name: "v", Type: storage.Int64},
	})
	for i := int64(0); i < 1000; i++ {
		tb.AppendRow(storage.IntValue(i))
	}
	e := engine.New(tb, engine.Options{Policy: engine.PolicyAdaptive,
		Adaptive: adaptive.Config{InitialZoneRows: 100, MinZoneRows: 10}})
	if err := e.EnableSkipping(); err != nil {
		t.Fatal(err)
	}
	res, err := Exec(e, "EXPLAIN SELECT COUNT(*) FROM t WHERE v BETWEEN 100 AND 199")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 || res.Columns[0] != "plan" {
		t.Fatalf("rows=%v", res.Rows)
	}
	joined := ""
	for _, row := range res.Rows {
		joined += row[0].Str() + "\n"
	}
	for _, want := range []string{"scan table", "adaptive skipper", "rows skippable", "predicate on \"v\""} {
		if !strings.Contains(joined, want) {
			t.Fatalf("plan missing %q:\n%s", want, joined)
		}
	}
	// EXPLAIN with no predicates.
	res, err = Exec(e, "EXPLAIN SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if strings.Contains(row[0].Str(), "full scan") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no-predicate plan: %v", res.Rows)
	}
	// Round trip keeps the prefix.
	s, err := Parse("EXPLAIN SELECT v FROM t LIMIT 1")
	if err != nil || !s.Explain {
		t.Fatalf("parse explain: %v %v", err, s.Explain)
	}
	if s.String() != "EXPLAIN SELECT v FROM t LIMIT 1" {
		t.Fatalf("render=%q", s.String())
	}
}

func TestOrSQL(t *testing.T) {
	tb := table.MustNew("t", table.Schema{{Name: "v", Type: storage.Int64}})
	for i := int64(0); i < 100; i++ {
		tb.AppendRow(storage.IntValue(i))
	}
	e := engine.New(tb, engine.Options{Policy: engine.PolicyAdaptive})
	if err := e.EnableSkipping(); err != nil {
		t.Fatal(err)
	}
	res, err := Exec(e, "SELECT COUNT(*) FROM t WHERE (v < 10 OR v >= 95)")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggs[0].Equal(storage.IntValue(15)) {
		t.Fatalf("count=%v", res.Aggs[0])
	}
	// OR combined with AND.
	res, err = Exec(e, "SELECT COUNT(*) FROM t WHERE (v < 10 OR v >= 95) AND v <> 5")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggs[0].Equal(storage.IntValue(14)) {
		t.Fatalf("count=%v", res.Aggs[0])
	}
	// Plain parenthesized predicate.
	res, err = Exec(e, "SELECT COUNT(*) FROM t WHERE (v < 10)")
	if err != nil || !res.Aggs[0].Equal(storage.IntValue(10)) {
		t.Fatalf("count=%v err=%v", res.Aggs, err)
	}
	// Round trip.
	s, err := Parse("SELECT COUNT(*) FROM t WHERE (v < 10 OR v = 50)")
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "SELECT COUNT(*) FROM t WHERE (v < 10 OR v = 50)" {
		t.Fatalf("render=%q", s.String())
	}
	// Errors.
	if _, err := Parse("SELECT COUNT(*) FROM t WHERE v < 10 OR v = 50"); !errors.Is(err, ErrSyntax) {
		t.Fatalf("bare OR: %v", err)
	}
	if _, err := Exec(e, "SELECT COUNT(*) FROM t WHERE (v < 10 OR x = 1)"); err == nil {
		t.Fatal("cross-column OR accepted")
	}
}

func TestOrderBySQL(t *testing.T) {
	tb := table.MustNew("t", table.Schema{{Name: "v", Type: storage.Int64}})
	for _, v := range []int64{5, 1, 9, 3} {
		tb.AppendRow(storage.IntValue(v))
	}
	e := engine.New(tb, engine.Options{Policy: engine.PolicyNone})
	res, err := Exec(e, "SELECT v FROM t ORDER BY v DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 9 || res.Rows[1][0].Int() != 5 {
		t.Fatalf("rows=%v", res.Rows)
	}
	res, err = Exec(e, "SELECT v FROM t ORDER BY v ASC")
	if err != nil || res.Rows[0][0].Int() != 1 {
		t.Fatalf("asc rows=%v err=%v", res.Rows, err)
	}
	s, err := Parse("SELECT v FROM t ORDER BY v DESC LIMIT 2")
	if err != nil || s.OrderBy != "v" || !s.OrderDesc {
		t.Fatalf("parse: %+v %v", s, err)
	}
	if s.String() != "SELECT v FROM t ORDER BY v DESC LIMIT 2" {
		t.Fatalf("render=%q", s.String())
	}
	if _, err := Parse("SELECT v FROM t ORDER v"); !errors.Is(err, ErrSyntax) {
		t.Fatalf("missing BY: %v", err)
	}
}
