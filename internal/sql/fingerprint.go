package sql

import (
	"fmt"
	"strings"

	"adskip/internal/expr"
)

// Fingerprint renders a statement as a literal-stripped template, the
// identity under which workload statistics aggregate (pg_stat_statements
// style). Two queries share a fingerprint iff they differ only in
// constants:
//
//   - every literal becomes "?" (so `v < 10` and `v < 99` collapse),
//   - IN lists collapse to a single placeholder (`IN (1,2,3)` and
//     `IN (7)` are the same template),
//   - LIMIT keeps its shape but not its value,
//   - the EXPLAIN [ANALYZE] prefix is dropped, so an analyzed run
//     aggregates with the plain executions it explains.
//
// Because the template is re-rendered from the parsed AST, case and
// whitespace are canonical for free: `select count(*)from data` and
// `SELECT COUNT(*) FROM data` produce the same fingerprint.
func Fingerprint(s Statement) string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	switch {
	case s.Star:
		sb.WriteString("*")
	default:
		items := append([]string{}, s.Cols...)
		for _, a := range s.Aggs {
			items = append(items, a.String())
		}
		sb.WriteString(strings.Join(items, ", "))
	}
	sb.WriteString(" FROM ")
	sb.WriteString(s.Table)
	if len(s.Where.Preds) > 0 {
		sb.WriteString(" WHERE ")
		parts := make([]string, len(s.Where.Preds))
		for i, p := range s.Where.Preds {
			parts[i] = predFingerprint(p)
		}
		sb.WriteString(strings.Join(parts, " AND "))
	}
	if s.GroupBy != "" {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(s.GroupBy)
	}
	if s.OrderBy != "" {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(s.OrderBy)
		if s.OrderDesc {
			sb.WriteString(" DESC")
		}
	}
	if s.Limit > 0 {
		sb.WriteString(" LIMIT ?")
	}
	return sb.String()
}

// FingerprintSQL parses and fingerprints in one step. Text that does not
// parse has no template; callers fall back to not attributing it.
func FingerprintSQL(query string) (string, error) {
	stmt, err := Parse(query)
	if err != nil {
		return "", err
	}
	return Fingerprint(stmt), nil
}

// predFingerprint is Pred.String() with placeholders for the constants.
// OR branches keep their shape (the operators distinguish templates);
// only the literals inside each branch are stripped.
func predFingerprint(p expr.Pred) string {
	switch p.Op {
	case expr.Or:
		parts := make([]string, len(p.Sub))
		for i, sub := range p.Sub {
			parts[i] = predFingerprint(sub)
		}
		return "(" + strings.Join(parts, " OR ") + ")"
	case expr.IsNull, expr.IsNotNull:
		return fmt.Sprintf("%s %s", p.Col, p.Op)
	case expr.Between:
		return fmt.Sprintf("%s BETWEEN ? AND ?", p.Col)
	case expr.In:
		return fmt.Sprintf("%s IN (?)", p.Col)
	default:
		return fmt.Sprintf("%s %s ?", p.Col, p.Op)
	}
}
