package sql

import "testing"

// The golden table: each SQL text maps to exactly one template. Cases
// cover literal stripping across types, whitespace/case canonicalization,
// IN-list collapse, BETWEEN, LIMIT, OR shapes, and the EXPLAIN prefix.
func TestFingerprintGolden(t *testing.T) {
	cases := []struct {
		sql  string
		want string
	}{
		{
			"SELECT COUNT(*) FROM data WHERE v < 10",
			"SELECT COUNT(*) FROM data WHERE v < ?",
		},
		{
			"select   count(*)   from data where v < 99999",
			"SELECT COUNT(*) FROM data WHERE v < ?",
		},
		{
			"SELECT COUNT(*) FROM data WHERE v BETWEEN 1000 AND 2000",
			"SELECT COUNT(*) FROM data WHERE v BETWEEN ? AND ?",
		},
		{
			"SELECT COUNT(*) FROM data WHERE v IN (1, 2, 3)",
			"SELECT COUNT(*) FROM data WHERE v IN (?)",
		},
		{
			"SELECT COUNT(*) FROM data WHERE v IN (42)",
			"SELECT COUNT(*) FROM data WHERE v IN (?)",
		},
		{
			"SELECT * FROM data WHERE v = 7 LIMIT 5",
			"SELECT * FROM data WHERE v = ? LIMIT ?",
		},
		{
			"SELECT * FROM data WHERE v = 7 LIMIT 500",
			"SELECT * FROM data WHERE v = ? LIMIT ?",
		},
		{
			"SELECT seq, COUNT(*) FROM data WHERE (v < 100 OR v > 900) GROUP BY seq ORDER BY seq DESC LIMIT 3",
			"SELECT seq, COUNT(*) FROM data WHERE (v < ? OR v > ?) GROUP BY seq ORDER BY seq DESC LIMIT ?",
		},
		{
			"SELECT MIN(v), MAX(v) FROM data WHERE v <> 0 AND seq >= 100",
			"SELECT MIN(v), MAX(v) FROM data WHERE v <> ? AND seq >= ?",
		},
		{
			"SELECT COUNT(*) FROM data WHERE name = 'alice'",
			"SELECT COUNT(*) FROM data WHERE name = ?",
		},
		{
			"SELECT COUNT(*) FROM data WHERE v IS NOT NULL",
			"SELECT COUNT(*) FROM data WHERE v IS NOT NULL",
		},
		{
			// EXPLAIN ANALYZE aggregates with the statement it explains.
			"EXPLAIN ANALYZE SELECT COUNT(*) FROM data WHERE v < 10",
			"SELECT COUNT(*) FROM data WHERE v < ?",
		},
		{
			"EXPLAIN SELECT COUNT(*) FROM data WHERE v < 10",
			"SELECT COUNT(*) FROM data WHERE v < ?",
		},
	}
	for _, tc := range cases {
		got, err := FingerprintSQL(tc.sql)
		if err != nil {
			t.Errorf("FingerprintSQL(%q): %v", tc.sql, err)
			continue
		}
		if got != tc.want {
			t.Errorf("FingerprintSQL(%q)\n got  %q\n want %q", tc.sql, got, tc.want)
		}
	}
}

// Distinct templates must not collapse: shape, not just table, is identity.
func TestFingerprintDistinguishesShapes(t *testing.T) {
	distinct := []string{
		"SELECT COUNT(*) FROM data WHERE v < 10",
		"SELECT COUNT(*) FROM data WHERE v > 10",
		"SELECT COUNT(*) FROM data WHERE v BETWEEN 1 AND 2",
		"SELECT COUNT(*) FROM data",
		"SELECT SUM(v) FROM data WHERE v < 10",
		"SELECT * FROM data WHERE v < 10",
		"SELECT * FROM data WHERE v < 10 LIMIT 1",
	}
	seen := make(map[string]string)
	for _, q := range distinct {
		fp, err := FingerprintSQL(q)
		if err != nil {
			t.Fatalf("FingerprintSQL(%q): %v", q, err)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("%q and %q collapsed to the same fingerprint %q", q, prev, fp)
		}
		seen[fp] = q
	}
}

func TestFingerprintSQLParseError(t *testing.T) {
	if fp, err := FingerprintSQL("DELETE FROM data"); err == nil {
		t.Fatalf("want parse error, got fingerprint %q", fp)
	}
}
