package sql

import "testing"

// FuzzParse exercises the lexer and parser with arbitrary input: they must
// never panic, and any statement that parses must render to a canonical
// form that re-parses to itself.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT COUNT(*), SUM(a) FROM t WHERE a BETWEEN 1 AND 2 GROUP BY b LIMIT 3",
		"SELECT a FROM t WHERE (a < 1 OR a > 2) AND b IS NOT NULL ORDER BY a DESC",
		"EXPLAIN SELECT a FROM t WHERE s IN ('x', 'it''s') AND f >= -2.5e3",
		"SELECT FROM WHERE AND",
		"SELECT 'unterminated",
		"SELECT a FROM t WHERE a = \x00",
		"((((((((((",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		rendered := stmt.String()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", rendered, err)
		}
		if stmt2.String() != rendered {
			t.Fatalf("unstable canonical form: %q -> %q", rendered, stmt2.String())
		}
	})
}
