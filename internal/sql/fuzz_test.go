package sql

import (
	"testing"

	"adskip/internal/engine"
	"adskip/internal/storage"
	"adskip/internal/table"
)

// fuzzSeeds is shared by FuzzParse and FuzzExec: hand-picked parser edge
// cases plus the example queries the demo REPL documents (adapted to the
// fuzz table's column names), so mutation starts from realistic SQL.
var fuzzSeeds = []string{
	"SELECT * FROM t",
	"SELECT COUNT(*), SUM(a) FROM t WHERE a BETWEEN 1 AND 2 GROUP BY b LIMIT 3",
	"SELECT a FROM t WHERE (a < 1 OR a > 2) AND b IS NOT NULL ORDER BY a DESC",
	"EXPLAIN SELECT a FROM t WHERE s IN ('x', 'it''s') AND f >= -2.5e3",
	"SELECT FROM WHERE AND",
	"SELECT 'unterminated",
	"SELECT a FROM t WHERE a = \x00",
	"((((((((((",
	// REPL quickstart examples (see cmd/adskip-demo).
	"SELECT COUNT(*) FROM t WHERE a BETWEEN 1000 AND 2000",
	"SELECT b, COUNT(*) FROM t WHERE (a < 100 OR a > 900) GROUP BY b LIMIT 5",
	"EXPLAIN SELECT COUNT(*) FROM t WHERE a < 1000",
	"EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE a < 1000",
	"SELECT MIN(a), MAX(a), AVG(f) FROM t WHERE s = 'oslo'",
	"SELECT a, f FROM t WHERE f IS NULL ORDER BY a LIMIT 10",
}

// FuzzParse exercises the lexer and parser with arbitrary input: they must
// never panic, and any statement that parses must render to a canonical
// form that re-parses to itself.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		rendered := stmt.String()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", rendered, err)
		}
		if stmt2.String() != rendered {
			t.Fatalf("unstable canonical form: %q -> %q", rendered, stmt2.String())
		}
	})
}

// FuzzExec drives the full pipeline — lex, parse, plan, execute — with
// arbitrary SQL against a real engine. Inputs that fail to parse or plan
// are fine; anything that executes must return without panicking. This is
// the fuzz-level guarantee behind the engine's panic isolation: malformed
// metadata access, odd aggregate/projection combinations, and degenerate
// predicates must surface as errors, never crashes.
func FuzzExec(f *testing.F) {
	tb, err := table.New("t", table.Schema{
		{Name: "a", Type: storage.Int64},
		{Name: "f", Type: storage.Float64},
		{Name: "s", Type: storage.String},
	})
	if err != nil {
		f.Fatal(err)
	}
	words := []string{"oslo", "rome", "cairo"}
	for i := 0; i < 512; i++ {
		fv := storage.FloatValue(float64(i) / 3)
		if i%17 == 0 {
			fv = storage.NullValue(storage.Float64)
		}
		err := tb.AppendRow(storage.IntValue(int64(i%97)), fv,
			storage.StringValue(words[i%len(words)]))
		if err != nil {
			f.Fatal(err)
		}
	}
	e := engine.New(tb, engine.Options{Policy: engine.PolicyAdaptive})
	if err := e.EnableSkipping("a", "f"); err != nil {
		f.Fatal(err)
	}

	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		// Cap pathological inputs; the parser is what we are fuzzing, not
		// gigabyte allocations.
		if len(input) > 1<<12 {
			input = input[:1<<12]
		}
		res, err := Exec(e, input)
		if err != nil {
			return
		}
		if res == nil {
			t.Fatalf("nil result with nil error for %q", input)
		}
		// Whatever executed, the engine must still be serviceable.
		if _, err := Exec(e, "SELECT COUNT(*) FROM t"); err != nil {
			t.Fatalf("engine unusable after %q: %v", input, err)
		}
	})
}
