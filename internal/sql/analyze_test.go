package sql

import (
	"errors"
	"strings"
	"testing"

	"adskip/internal/adaptive"
	"adskip/internal/engine"
	"adskip/internal/storage"
	"adskip/internal/table"
)

func TestParseExplainAnalyze(t *testing.T) {
	s, err := Parse("EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE v < 10")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Explain || !s.Analyze {
		t.Fatalf("flags: explain=%v analyze=%v", s.Explain, s.Analyze)
	}
	if got := s.String(); got != "EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE v < 10" {
		t.Fatalf("render = %q", got)
	}
	// Round trip: rendering reparses to the same flags.
	s2, err := Parse(s.String())
	if err != nil || !s2.Explain || !s2.Analyze {
		t.Fatalf("round trip: %v %+v", err, s2)
	}
	// Plain EXPLAIN keeps Analyze off.
	s3, err := Parse("EXPLAIN SELECT COUNT(*) FROM t")
	if err != nil || s3.Analyze {
		t.Fatalf("plain explain: %v analyze=%v", err, s3.Analyze)
	}
	// ANALYZE without EXPLAIN is not a statement starter.
	if _, err := Parse("ANALYZE SELECT COUNT(*) FROM t"); !errors.Is(err, ErrSyntax) {
		t.Fatalf("bare ANALYZE: %v", err)
	}
}

func TestExecExplainAnalyzeSQL(t *testing.T) {
	tb := table.MustNew("t", table.Schema{{Name: "v", Type: storage.Int64}})
	for i := int64(0); i < 1000; i++ {
		tb.AppendRow(storage.IntValue(i))
	}
	e := engine.New(tb, engine.Options{Policy: engine.PolicyAdaptive,
		Adaptive: adaptive.Config{InitialZoneRows: 100, MinZoneRows: 10}})
	if err := e.EnableSkipping(); err != nil {
		t.Fatal(err)
	}
	res, err := Exec(e, "EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE v BETWEEN 100 AND 199")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || res.Columns[0] != "plan" {
		t.Fatalf("rows=%v cols=%v", res.Rows, res.Columns)
	}
	var joined strings.Builder
	for _, row := range res.Rows {
		joined.WriteString(row[0].Str())
		joined.WriteString("\n")
	}
	// EXPLAIN ANALYZE really executed: actuals, phases, and the pruning
	// summary are all present.
	for _, want := range []string{
		"EXPLAIN ANALYZE: table \"t\" (1000 rows), 100 rows matched",
		"phase plan", "phase probe", "phase scan", "phase feedback",
		"predicate on \"v\"",
		"pruning:",
	} {
		if !strings.Contains(joined.String(), want) {
			t.Fatalf("plan missing %q:\n%s", want, joined.String())
		}
	}
}
