// Package sql implements a small SQL front-end for the column store: a
// hand-written lexer and recursive-descent parser for single-table
// SELECT statements with conjunctive WHERE clauses, and a binder/planner
// that lowers statements onto the engine's query form. The subset matches
// the scan-heavy query shapes of the paper's evaluation.
package sql

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

// token is one lexeme with its source position (byte offset).
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep original case
	pos  int
}

// keywords recognized by the lexer (case-insensitive).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"BETWEEN": true, "IN": true, "LIMIT": true, "COUNT": true,
	"SUM": true, "MIN": true, "MAX": true, "AVG": true,
	"NOT": true, "TRUE": true, "FALSE": true, "NULL": true, "IS": true,
	"GROUP": true, "BY": true, "EXPLAIN": true, "ANALYZE": true, "OR": true,
	"ORDER": true, "ASC": true, "DESC": true,
}

// ErrSyntax is wrapped by all lexer/parser errors.
var ErrSyntax = errors.New("sql: syntax error")

// lexError formats a positioned syntax error.
func lexError(pos int, format string, args ...interface{}) error {
	return fmt.Errorf("%w at offset %d: %s", ErrSyntax, pos, fmt.Sprintf(format, args...))
}

// lex tokenizes input. String literals use single quotes with ” escaping.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, lexError(start, "unterminated string literal")
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case unicode.IsDigit(c) || (c == '-' && i+1 < n && unicode.IsDigit(rune(input[i+1])) && startsValue(toks)):
			start := i
			if c == '-' {
				i++
			}
			seenDot, seenExp := false, false
			for i < n {
				d := input[i]
				if unicode.IsDigit(rune(d)) {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			start := i
			// Multi-char operators first.
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, token{kind: tokSymbol, text: two, pos: start})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '(', ')', ',', '*', ';':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start})
				i++
			default:
				return nil, lexError(start, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

// startsValue reports whether a '-' at the current point begins a numeric
// literal (after an operator/keyword/'(', not after a value). This keeps
// "a > -5" working without general unary-expression support.
func startsValue(toks []token) bool {
	if len(toks) == 0 {
		return false
	}
	t := toks[len(toks)-1]
	switch t.kind {
	case tokSymbol:
		return t.text != ")" && t.text != "*"
	case tokKeyword:
		return true
	default:
		return false
	}
}
