package sql

import (
	"fmt"
	"strconv"
	"strings"

	"adskip/internal/engine"
	"adskip/internal/expr"
	"adskip/internal/storage"
)

// Statement is a parsed single-table SELECT.
type Statement struct {
	Explain   bool // EXPLAIN prefix: plan without executing
	Analyze   bool // EXPLAIN ANALYZE: execute and report actuals
	Table     string
	Star      bool         // SELECT *
	Aggs      []engine.Agg // aggregate select list
	Cols      []string     // projected columns
	Where     expr.Conj
	GroupBy   string // single grouping column; "" = none
	OrderBy   string // projection sort column; "" = none
	OrderDesc bool
	Limit     int // 0 = none
}

// String renders the statement back to SQL (canonical form).
func (s Statement) String() string {
	var sb strings.Builder
	if s.Explain {
		sb.WriteString("EXPLAIN ")
		if s.Analyze {
			sb.WriteString("ANALYZE ")
		}
	}
	sb.WriteString("SELECT ")
	switch {
	case s.Star:
		sb.WriteString("*")
	default:
		// Plain columns first (GROUP BY keys), then aggregates — the
		// conventional ordering; note this canonicalizes interleaved
		// select lists.
		items := append([]string{}, s.Cols...)
		for _, a := range s.Aggs {
			items = append(items, a.String())
		}
		sb.WriteString(strings.Join(items, ", "))
	}
	sb.WriteString(" FROM ")
	sb.WriteString(s.Table)
	if len(s.Where.Preds) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.String())
	}
	if s.GroupBy != "" {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(s.GroupBy)
	}
	if s.OrderBy != "" {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(s.OrderBy)
		if s.OrderDesc {
			sb.WriteString(" DESC")
		}
	}
	if s.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	return sb.String()
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
}

// Parse parses one SELECT statement (an optional trailing semicolon is
// allowed).
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return Statement{}, err
	}
	p := &parser{toks: toks}
	explain := p.acceptKeyword("EXPLAIN")
	analyze := explain && p.acceptKeyword("ANALYZE")
	stmt, err := p.selectStmt()
	if err != nil {
		return Statement{}, err
	}
	stmt.Explain = explain
	stmt.Analyze = analyze
	p.acceptSymbol(";")
	if p.cur().kind != tokEOF {
		return Statement{}, lexError(p.cur().pos, "unexpected trailing input %q", p.cur().text)
	}
	return stmt, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == sym {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return lexError(p.cur().pos, "expected %s, got %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return lexError(p.cur().pos, "expected %q, got %q", sym, p.cur().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", lexError(p.cur().pos, "expected identifier, got %q", p.cur().text)
	}
	return p.next().text, nil
}

func (p *parser) selectStmt() (Statement, error) {
	var s Statement
	if err := p.expectKeyword("SELECT"); err != nil {
		return s, err
	}
	if err := p.selectList(&s); err != nil {
		return s, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return s, err
	}
	tbl, err := p.expectIdent()
	if err != nil {
		return s, err
	}
	s.Table = tbl
	if p.acceptKeyword("WHERE") {
		conj, err := p.conjunction()
		if err != nil {
			return s, err
		}
		s.Where = conj
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return s, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return s, err
		}
		s.GroupBy = col
	}
	if len(s.Aggs) > 0 && len(s.Cols) > 0 && s.GroupBy == "" {
		return s, lexError(p.cur().pos, "mixing aggregates and columns requires GROUP BY")
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return s, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return s, err
		}
		s.OrderBy = col
		if p.acceptKeyword("DESC") {
			s.OrderDesc = true
		} else {
			p.acceptKeyword("ASC")
		}
	}
	if p.acceptKeyword("LIMIT") {
		if p.cur().kind != tokNumber {
			return s, lexError(p.cur().pos, "expected row count after LIMIT")
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil || n < 0 {
			return s, lexError(p.cur().pos, "bad LIMIT value")
		}
		s.Limit = n
	}
	return s, nil
}

func (p *parser) selectList(s *Statement) error {
	if p.acceptSymbol("*") {
		s.Star = true
		return nil
	}
	for {
		switch {
		case p.cur().kind == tokKeyword && isAggKeyword(p.cur().text):
			agg, err := p.aggregate()
			if err != nil {
				return err
			}
			s.Aggs = append(s.Aggs, agg)
		case p.cur().kind == tokIdent:
			s.Cols = append(s.Cols, p.next().text)
		default:
			return lexError(p.cur().pos, "expected column or aggregate, got %q", p.cur().text)
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	return nil
}

func isAggKeyword(kw string) bool {
	switch kw {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

func (p *parser) aggregate() (engine.Agg, error) {
	kw := p.next().text
	if err := p.expectSymbol("("); err != nil {
		return engine.Agg{}, err
	}
	var agg engine.Agg
	if kw == "COUNT" && p.acceptSymbol("*") {
		agg = engine.Agg{Kind: engine.CountStar}
	} else {
		col, err := p.expectIdent()
		if err != nil {
			return engine.Agg{}, err
		}
		switch kw {
		case "COUNT":
			agg = engine.Agg{Kind: engine.CountCol, Col: col}
		case "SUM":
			agg = engine.Agg{Kind: engine.Sum, Col: col}
		case "MIN":
			agg = engine.Agg{Kind: engine.Min, Col: col}
		case "MAX":
			agg = engine.Agg{Kind: engine.Max, Col: col}
		case "AVG":
			agg = engine.Agg{Kind: engine.Avg, Col: col}
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return engine.Agg{}, err
	}
	return agg, nil
}

func (p *parser) conjunction() (expr.Conj, error) {
	var conj expr.Conj
	for {
		pred, err := p.conjunct()
		if err != nil {
			return conj, err
		}
		conj.Preds = append(conj.Preds, pred)
		if p.cur().kind == tokKeyword && p.cur().text == "OR" {
			return conj, lexError(p.cur().pos, "OR must be parenthesized: (a = 1 OR a = 2)")
		}
		if !p.acceptKeyword("AND") {
			break
		}
	}
	return conj, nil
}

// conjunct parses one AND-operand: a bare predicate, or a parenthesized
// same-column OR group.
func (p *parser) conjunct() (expr.Pred, error) {
	if !p.acceptSymbol("(") {
		return p.predicate()
	}
	first, err := p.predicate()
	if err != nil {
		return expr.Pred{}, err
	}
	if p.acceptSymbol(")") {
		return first, nil // plain parenthesized predicate
	}
	subs := []expr.Pred{first}
	for p.acceptKeyword("OR") {
		next, err := p.predicate()
		if err != nil {
			return expr.Pred{}, err
		}
		subs = append(subs, next)
	}
	if err := p.expectSymbol(")"); err != nil {
		return expr.Pred{}, err
	}
	return expr.NewOrPred(subs...)
}

func (p *parser) predicate() (expr.Pred, error) {
	col, err := p.expectIdent()
	if err != nil {
		return expr.Pred{}, err
	}
	if p.acceptKeyword("IS") {
		negated := p.acceptKeyword("NOT")
		if !p.acceptKeyword("NULL") {
			return expr.Pred{}, lexError(p.cur().pos, "expected NULL after IS")
		}
		if negated {
			return expr.NewPred(col, expr.IsNotNull)
		}
		return expr.NewPred(col, expr.IsNull)
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.literal()
		if err != nil {
			return expr.Pred{}, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return expr.Pred{}, err
		}
		hi, err := p.literal()
		if err != nil {
			return expr.Pred{}, err
		}
		return expr.NewPred(col, expr.Between, lo, hi)
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return expr.Pred{}, err
		}
		var vals []storage.Value
		for {
			v, err := p.literal()
			if err != nil {
				return expr.Pred{}, err
			}
			vals = append(vals, v)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return expr.Pred{}, err
		}
		return expr.NewPred(col, expr.In, vals...)
	}
	if p.cur().kind != tokSymbol {
		return expr.Pred{}, lexError(p.cur().pos, "expected comparison operator, got %q", p.cur().text)
	}
	opText := p.next().text
	var op expr.Op
	switch opText {
	case "=":
		op = expr.EQ
	case "<>", "!=":
		op = expr.NE
	case "<":
		op = expr.LT
	case "<=":
		op = expr.LE
	case ">":
		op = expr.GT
	case ">=":
		op = expr.GE
	default:
		return expr.Pred{}, lexError(p.cur().pos, "unknown operator %q", opText)
	}
	v, err := p.literal()
	if err != nil {
		return expr.Pred{}, err
	}
	return expr.NewPred(col, op, v)
}

// literal parses a number or string literal into a dynamic value. Integer
// literals become Int64 values; the binder coerces them to Float64 when
// the column requires it.
func (p *parser) literal() (storage.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.i++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return storage.Value{}, lexError(t.pos, "bad float literal %q", t.text)
			}
			return storage.FloatValue(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return storage.Value{}, lexError(t.pos, "bad integer literal %q", t.text)
		}
		return storage.IntValue(n), nil
	case tokString:
		p.i++
		return storage.StringValue(t.text), nil
	case tokKeyword:
		if t.text == "NULL" {
			return storage.Value{}, lexError(t.pos, "NULL literals are not allowed in comparisons")
		}
	}
	return storage.Value{}, lexError(t.pos, "expected literal, got %q", t.text)
}
