package sql

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"adskip/internal/engine"
	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, COUNT(*) FROM t WHERE x >= -3.5 AND s = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.kind == tokEOF {
			break
		}
		texts = append(texts, tok.text)
	}
	want := []string{"SELECT", "a", ",", "COUNT", "(", "*", ")", "FROM", "t",
		"WHERE", "x", ">=", "-3.5", "AND", "s", "=", "it's"}
	if len(texts) != len(want) {
		t.Fatalf("tokens %v want %v", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q want %q", i, texts[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); !errors.Is(err, ErrSyntax) {
		t.Fatalf("unterminated: %v", err)
	}
	if _, err := lex("a @ b"); !errors.Is(err, ErrSyntax) {
		t.Fatalf("bad char: %v", err)
	}
}

func TestParseSimpleSelect(t *testing.T) {
	s, err := Parse("SELECT COUNT(*) FROM sales WHERE price BETWEEN 10 AND 20 LIMIT 5;")
	if err != nil {
		t.Fatal(err)
	}
	if s.Table != "sales" || s.Limit != 5 || len(s.Aggs) != 1 || s.Aggs[0].Kind != engine.CountStar {
		t.Fatalf("stmt=%+v", s)
	}
	if len(s.Where.Preds) != 1 || s.Where.Preds[0].Op != expr.Between {
		t.Fatalf("where=%v", s.Where)
	}
}

func TestParseSelectVariants(t *testing.T) {
	cases := []string{
		"SELECT * FROM t",
		"SELECT a, b FROM t",
		"SELECT SUM(x), AVG(y), MIN(z), MAX(z), COUNT(z) FROM t",
		"SELECT a FROM t WHERE a = 1 AND b <> 2 AND c < 3 AND d <= 4 AND e > 5 AND f >= 6",
		"SELECT a FROM t WHERE s IN ('x', 'y', 'z')",
		"SELECT a FROM t WHERE f > -2.5e3",
		"SELECT a FROM t WHERE b != 7",
	}
	for _, c := range cases {
		if _, err := Parse(c); err != nil {
			t.Fatalf("%q: %v", c, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT a b FROM t",       // missing comma -> trailing input
		"SELECT a, SUM(b) FROM t", // mixed agg and column
		"SELECT a FROM t WHERE",   // dangling where
		"SELECT a FROM t WHERE a ~ 3",
		"SELECT a FROM t WHERE a = NULL",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"SELECT a FROM t WHERE a IN ()",
		"SELECT a FROM t LIMIT x",
		"SELECT COUNT(* FROM t",
		"SELECT a FROM t extra junk",
		"INSERT INTO t VALUES (1)",
	}
	for _, c := range cases {
		if _, err := Parse(c); !errors.Is(err, ErrSyntax) {
			t.Fatalf("%q: err=%v (want ErrSyntax)", c, err)
		}
	}
}

func TestStatementStringRoundTrip(t *testing.T) {
	cases := []string{
		"SELECT * FROM t",
		"SELECT a, b FROM t WHERE a = 1 LIMIT 3",
		"SELECT COUNT(*), SUM(b) FROM t WHERE a BETWEEN 1 AND 5 AND s IN ('x', 'y')",
		"SELECT MIN(f) FROM t WHERE f > -2.5",
	}
	for _, c := range cases {
		s1, err := Parse(c)
		if err != nil {
			t.Fatalf("%q: %v", c, err)
		}
		rendered := s1.String()
		s2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse %q: %v", rendered, err)
		}
		if s2.String() != rendered {
			t.Fatalf("unstable round trip: %q -> %q", rendered, s2.String())
		}
	}
}

func demoEngine(t *testing.T) *engine.Engine {
	t.Helper()
	tb := table.MustNew("sales", table.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "price", Type: storage.Float64},
		{Name: "city", Type: storage.String},
	})
	rows := []struct {
		id    int64
		price float64
		city  string
	}{
		{1, 10.5, "oslo"}, {2, 20.0, "rome"}, {3, 5.25, "oslo"},
		{4, 99.0, "cairo"}, {5, 15.0, "rome"},
	}
	for _, r := range rows {
		if err := tb.AppendRow(storage.IntValue(r.id), storage.FloatValue(r.price), storage.StringValue(r.city)); err != nil {
			t.Fatal(err)
		}
	}
	e := engine.New(tb, engine.Options{Policy: engine.PolicyAdaptive})
	if err := e.EnableSkipping(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExecEndToEnd(t *testing.T) {
	e := demoEngine(t)
	res, err := Exec(e, "SELECT COUNT(*), SUM(price) FROM sales WHERE city = 'oslo'")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggs[0].Equal(storage.IntValue(2)) {
		t.Fatalf("count=%v", res.Aggs[0])
	}
	if !res.Aggs[1].Equal(storage.FloatValue(15.75)) {
		t.Fatalf("sum=%v", res.Aggs[1])
	}
}

func TestExecIntLiteralCoercedToFloat(t *testing.T) {
	e := demoEngine(t)
	res, err := Exec(e, "SELECT COUNT(*) FROM sales WHERE price >= 15")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggs[0].Equal(storage.IntValue(3)) { // 20, 99, 15
		t.Fatalf("count=%v", res.Aggs[0])
	}
}

func TestExecSelectStarAndLimit(t *testing.T) {
	e := demoEngine(t)
	res, err := Exec(e, "SELECT * FROM sales WHERE id > 1 LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Columns) != 3 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
	if res.Rows[0][0].Int() != 2 || res.Rows[0][2].Str() != "rome" {
		t.Fatalf("row0=%v", res.Rows[0])
	}
}

func TestExecPlanningErrors(t *testing.T) {
	e := demoEngine(t)
	if _, err := Exec(e, "SELECT COUNT(*) FROM missing"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("missing table: %v", err)
	}
	if _, err := Exec(e, "SELECT COUNT(*) FROM sales WHERE nope = 1"); !errors.Is(err, table.ErrNoSuchColumn) {
		t.Fatalf("missing column: %v", err)
	}
	if _, err := Exec(e, "SELECT COUNT(*) FROM sales WHERE city = 3"); !errors.Is(err, expr.ErrTypeMismatch) {
		t.Fatalf("type mismatch: %v", err)
	}
	if _, err := Exec(e, "SELECT nope FROM sales"); !errors.Is(err, table.ErrNoSuchColumn) {
		t.Fatalf("missing projection: %v", err)
	}
	if _, err := Exec(e, "SELECT SUM(city) FROM sales"); !errors.Is(err, engine.ErrUnsupportedAgg) {
		t.Fatalf("sum string: %v", err)
	}
}

// Property: the parser never panics and either errors or yields a
// statement that renders and re-parses to the same canonical form.
func TestQuickParserTotal(t *testing.T) {
	f := func(raw string) bool {
		s := raw
		if len(s) > 200 {
			s = s[:200]
		}
		stmt, err := Parse(s)
		if err != nil {
			return true
		}
		rendered := stmt.String()
		stmt2, err := Parse(rendered)
		if err != nil {
			return false
		}
		return stmt2.String() == rendered
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	// Also fuzz with SQL-ish fragments to hit deeper parser paths.
	frags := []string{"SELECT", "FROM", "WHERE", "a", "*", ",", "(", ")",
		"COUNT", "BETWEEN", "AND", "IN", "'x'", "1", "2.5", "<=", "=", "LIMIT"}
	g := func(seed int64) bool {
		r := seed
		var sb strings.Builder
		for k := 0; k < 12; k++ {
			r = r*6364136223846793005 + 1442695040888963407
			idx := int(uint64(r)>>33) % len(frags)
			sb.WriteString(frags[idx])
			sb.WriteByte(' ')
		}
		stmt, err := Parse(sb.String())
		if err != nil {
			return true
		}
		_, err = Parse(stmt.String())
		return err == nil
	}
	if err := quick.Check(g, cfg); err != nil {
		t.Fatal(err)
	}
}
