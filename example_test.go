package adskip_test

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"adskip"
)

// The canonical flow: create, ingest, enable skipping, query.
func Example() {
	db := adskip.Open(adskip.Options{Policy: adskip.Adaptive})
	t, err := db.CreateTable("sales",
		adskip.Col("id", adskip.Int64),
		adskip.Col("price", adskip.Float64),
		adskip.Col("city", adskip.String))
	if err != nil {
		log.Fatal(err)
	}
	rows := []struct {
		id    int
		price float64
		city  string
	}{
		{1, 10.5, "oslo"}, {2, 20.0, "rome"}, {3, 5.25, "oslo"}, {4, 99.0, "cairo"},
	}
	for _, r := range rows {
		if err := t.Append(r.id, r.price, r.city); err != nil {
			log.Fatal(err)
		}
	}
	if err := t.EnableSkipping(); err != nil {
		log.Fatal(err)
	}
	res, err := db.Exec("SELECT COUNT(*), AVG(price) FROM sales WHERE city = 'oslo'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Aggs[0], res.Aggs[1])
	// Output: 2 7.875
}

// GROUP BY aggregates per key; groups come back in key order.
func ExampleDB_Exec_groupBy() {
	db := adskip.Open(adskip.Options{})
	t, _ := db.CreateTable("orders",
		adskip.Col("region", adskip.String), adskip.Col("amount", adskip.Int64))
	for _, r := range []struct {
		region string
		amount int
	}{
		{"emea", 10}, {"apac", 5}, {"emea", 7}, {"apac", 3}, {"noram", 1},
	} {
		t.Append(r.region, r.amount)
	}
	res, _ := db.Exec("SELECT region, SUM(amount) FROM orders GROUP BY region")
	for _, row := range res.Rows {
		fmt.Println(row[0], row[1])
	}
	// Output:
	// apac 8
	// emea 17
	// noram 1
}

// EXPLAIN shows how metadata will prune a query before running it.
func ExampleDB_Exec_explain() {
	db := adskip.Open(adskip.Options{Policy: adskip.Adaptive})
	t, _ := db.CreateTable("t", adskip.Col("v", adskip.Int64))
	for i := 0; i < 10; i++ {
		t.Append(i)
	}
	t.EnableSkipping()
	res, _ := db.Exec("EXPLAIN SELECT COUNT(*) FROM t WHERE v < 3")
	fmt.Println(res.Columns[0], "lines:", len(res.Rows) > 0)
	// Output: plan lines: true
}

// CSV ingest infers column types from the data.
func ExampleDB_LoadCSV() {
	db := adskip.Open(adskip.Options{})
	csvData := "id,price\n1,9.5\n2,20\n"
	t, err := db.LoadCSV("items", strings.NewReader(csvData), adskip.CSVOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t.NumRows())
	// Output: 2
}

// Tables round-trip through a checksummed binary snapshot.
func ExampleDB_SaveTable() {
	db := adskip.Open(adskip.Options{})
	t, _ := db.CreateTable("t", adskip.Col("v", adskip.Int64))
	t.Append(42)
	var buf bytes.Buffer
	if err := db.SaveTable("t", &buf); err != nil {
		log.Fatal(err)
	}
	db2 := adskip.Open(adskip.Options{})
	restored, err := db2.LoadTable(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(restored.Name(), restored.NumRows())
	// Output: t 1
}
