package adskip

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// TestHistoryTimeline drives queries while the adaptation-timeline
// sampler runs and proves the timeline is live (samples accumulate, the
// cumulative counters are monotone, skip state is per column), served
// over /history, and torn down by Close without leaking the sampler
// goroutine.
func TestHistoryTimeline(t *testing.T) {
	db := seededDB(t, Options{Policy: Adaptive, HistoryInterval: 5 * time.Millisecond, HistoryCapacity: 64})
	before := runtime.NumGoroutine()

	if got := db.History(); got != nil {
		t.Fatalf("History non-empty before StartTelemetry: %d samples", len(got))
	}
	url, err := db.StartTelemetry("")
	if err != nil {
		t.Fatal(err)
	}

	// Keep querying until a few samples land.
	deadline := time.Now().Add(5 * time.Second)
	for len(db.History()) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("timeline stuck at %d samples", len(db.History()))
		}
		if _, err := db.Exec("SELECT COUNT(*) FROM events WHERE v BETWEEN 3000 AND 3006"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}

	hist := db.History()
	var prev int64 = -1
	for i, s := range hist {
		if s.Queries < prev {
			t.Fatalf("sample %d: cumulative queries went backwards (%d -> %d)", i, prev, s.Queries)
		}
		prev = s.Queries
		if s.SkipRatio < 0 || s.SkipRatio > 1 {
			t.Fatalf("sample %d: skip ratio %f out of [0,1]", i, s.SkipRatio)
		}
	}
	last := hist[len(hist)-1]
	if last.Queries == 0 || last.RowsSkipped == 0 {
		t.Fatalf("timeline never saw the workload: %+v", last)
	}
	if last.LatencyP50 <= 0 || last.LatencyP95 < last.LatencyP50 {
		t.Fatalf("latency quantiles inconsistent: p50=%g p95=%g", last.LatencyP50, last.LatencyP95)
	}
	var vcol *HistoryColumn
	for i := range last.Columns {
		if last.Columns[i].Column == "v" {
			vcol = &last.Columns[i]
		}
	}
	if vcol == nil || vcol.Table != "events" || !vcol.Enabled || vcol.Zones == 0 {
		t.Fatalf("column v missing or flat in timeline: %+v", last.Columns)
	}

	// The same timeline over HTTP.
	resp, err := http.Get(url + "/history")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/history = %d", resp.StatusCode)
	}
	var listing struct {
		IntervalNS int64           `json:"interval_ns"`
		Samples    []HistorySample `json:"samples"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatalf("invalid /history JSON: %v\n%s", err, body)
	}
	if listing.IntervalNS != int64(5*time.Millisecond) || len(listing.Samples) == 0 {
		t.Fatalf("served listing: interval %d, %d samples", listing.IntervalNS, len(listing.Samples))
	}

	// Close stops the sampler (and everything else) without leaks.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if got := db.History(); got != nil {
		t.Fatalf("History non-empty after Close: %d samples", len(got))
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
