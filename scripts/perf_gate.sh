#!/usr/bin/env bash
# perf_gate.sh — CI perf-regression gate.
#
# Re-runs the gate stream (fig1 headline configuration: clustered data,
# adaptive policy, 1% range queries) at the scale recorded in the
# committed baseline and fails if steady-state p95 latency, throughput,
# or skip ratio regressed beyond the tolerance (default 15%).
#
#   bash scripts/perf_gate.sh                       # enforce
#   PERF_GATE_WARN_ONLY=1 bash scripts/perf_gate.sh # report, never fail
#   BASELINE=other.json bash scripts/perf_gate.sh   # gate against another run
#
# Refresh the baseline (on a quiet machine) with:
#   go run ./cmd/adskip-bench -experiment fig1 -rows 262144 -queries 128 \
#     -json BENCH_BASELINE.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${BASELINE:-BENCH_BASELINE.json}"
TOLERANCE="${TOLERANCE:-0.15}"

if [[ ! -f "$BASELINE" ]]; then
  echo "perf gate: baseline $BASELINE not found" >&2
  exit 1
fi

if go run ./cmd/adskip-bench -baseline "$BASELINE" -gate-tolerance "$TOLERANCE"; then
  exit 0
fi

if [[ "${PERF_GATE_WARN_ONLY:-0}" == "1" ]]; then
  echo "perf gate: regression detected, but PERF_GATE_WARN_ONLY=1 — not failing"
  exit 0
fi
echo "perf gate: FAIL (set PERF_GATE_WARN_ONLY=1 to downgrade, or refresh $BASELINE if the regression is intended)" >&2
exit 1
