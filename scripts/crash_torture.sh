#!/usr/bin/env bash
# crash_torture.sh — kill-9 durability torture for the WAL ingest path.
#
# Runs the full crash matrix (every injected crash point in the commit
# pipeline, several randomized-but-reproducible triggers each, plus an
# externally timed kill -9) against real adskip-server child processes
# under concurrent insert + Zipf query load, then restarts each on its
# WAL and requires the recovered row count to be exact: every
# acknowledged row present, nothing invented, torn tails truncated,
# skipping metadata verified clean. Finishes with a bounded fuzz run of
# the WAL replay path.
#
#   bash scripts/crash_torture.sh                 # full matrix + fuzz
#   FUZZTIME=0 bash scripts/crash_torture.sh      # skip the fuzz leg
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-30s}"

echo "== crash matrix (full) =="
ADSKIP_CRASH_FULL=1 go test -v -count=1 -timeout 15m ./internal/crashtest/

echo "== WAL unit + group-commit race tests =="
go test -race -count=1 ./internal/wal/

if [[ "$FUZZTIME" != "0" ]]; then
  echo "== WAL replay fuzz ($FUZZTIME) =="
  go test -run '^$' -fuzz FuzzReplay -fuzztime "$FUZZTIME" ./internal/wal/
fi

echo "crash torture: PASS"
