#!/usr/bin/env bash
# Telemetry smoke test: start the demo REPL with --serve on an ephemeral
# port, generate a table, run a query, then curl the telemetry endpoints
# and fail on any non-200 status or invalid JSON. CI runs this to catch
# endpoint regressions that unit tests (which use httptest-style setups)
# could miss — this exercises the real binary end to end.
set -euo pipefail

cd "$(dirname "$0")/.."

DEMO=$(mktemp -d)/adskip-demo
OUT=$(mktemp)
FIFO=$(mktemp -u)
trap 'rm -f "$OUT" "$FIFO"; kill $DEMO_PID 2>/dev/null || true' EXIT

go build -o "$DEMO" ./cmd/adskip-demo

mkfifo "$FIFO"
"$DEMO" --serve --serve-addr 127.0.0.1:0 --slow 1ns < "$FIFO" > "$OUT" 2>&1 &
DEMO_PID=$!
# Keep the fifo's write end open so the REPL does not see EOF.
exec 9> "$FIFO"

printf '\\gen clustered 100000\nSELECT COUNT(*) FROM data WHERE v BETWEEN 1000 AND 5000;\nSELECT COUNT(*) FROM data WHERE v BETWEEN 1000 AND 5000;\n' >&9

# Wait for the telemetry banner (the server binds before the prompt).
URL=""
for _ in $(seq 1 50); do
  URL=$(grep -o 'http://[0-9.:]*' "$OUT" | head -1 || true)
  [ -n "$URL" ] && break
  sleep 0.2
done
if [ -z "$URL" ]; then
  echo "telemetry URL never appeared; demo output:" >&2
  cat "$OUT" >&2
  exit 1
fi
echo "telemetry at $URL"

check_status() { # path [min_bytes]
  local path=$1 min=${2:-1} body code
  body=$(mktemp)
  code=$(curl -sS -o "$body" -w '%{http_code}' "$URL$path")
  if [ "$code" != "200" ]; then
    echo "GET $path -> $code" >&2
    cat "$body" >&2
    rm -f "$body"
    exit 1
  fi
  if [ "$(wc -c < "$body")" -lt "$min" ]; then
    echo "GET $path -> suspiciously small body" >&2
    rm -f "$body"
    exit 1
  fi
  echo "$body"
}

check_json() { # path
  local body
  body=$(check_status "$1")
  if ! python3 -m json.tool < "$body" > /dev/null 2>&1; then
    echo "GET $1 -> invalid JSON" >&2
    cat "$body" >&2
    rm -f "$body"
    exit 1
  fi
  rm -f "$body"
  echo "GET $1 -> 200, valid JSON"
}

METRICS=$(check_status /metrics 100)
grep -q '^adskip_queries_total' "$METRICS" || {
  echo "/metrics missing adskip_queries_total" >&2
  cat "$METRICS" >&2
  exit 1
}
rm -f "$METRICS"
echo "GET /metrics -> 200, Prometheus exposition"

check_json /metrics.json
check_json /traces
check_json '/traces?format=chrome'
check_json /slow
check_json /skipmap
check_json '/skipmap?zones=0'
check_json /events
check_json /runtime
check_json /history

# The dashboard is a self-contained HTML page (the demo serves it even
# without an adaptation sampler; the charts just stay empty).
DASH=$(check_status /dash 1000)
for needle in '<!DOCTYPE html>' '/history' '/skipmap' 'prefers-color-scheme'; do
  grep -qF "$needle" "$DASH" || {
    echo "/dash page missing $needle" >&2
    rm -f "$DASH"
    exit 1
  }
done
rm -f "$DASH"
echo "GET /dash -> 200, dashboard page"

# A one-second CPU profile must come back whole (pprof protobuf, gzipped).
PROFILE=$(check_status '/debug/pprof/profile?seconds=1' 64)
rm -f "$PROFILE"
echo "GET /debug/pprof/profile?seconds=1 -> 200"

printf '\\quit\n' >&9
exec 9>&-
wait $DEMO_PID 2>/dev/null || true
echo "telemetry smoke: OK"
