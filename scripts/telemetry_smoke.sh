#!/usr/bin/env bash
# Telemetry smoke test: start the demo REPL with --serve on an ephemeral
# port, generate a table, run a query, then curl the telemetry endpoints
# and fail on any non-200 status or invalid JSON. CI runs this to catch
# endpoint regressions that unit tests (which use httptest-style setups)
# could miss — this exercises the real binary end to end.
set -euo pipefail

cd "$(dirname "$0")/.."

DEMO=$(mktemp -d)/adskip-demo
OUT=$(mktemp)
FIFO=$(mktemp -u)
trap 'rm -f "$OUT" "$FIFO"; kill $DEMO_PID 2>/dev/null || true' EXIT

go build -o "$DEMO" ./cmd/adskip-demo

mkfifo "$FIFO"
# SLO flags: tight windows and a fast sampling interval so the health
# monitor reaches critical (and recovers) within smoke-test patience.
"$DEMO" --serve --serve-addr 127.0.0.1:0 --slow 1ns \
  -slo-p95 50ms -slo-windows 1s,3s,10s -history-interval 250ms < "$FIFO" > "$OUT" 2>&1 &
DEMO_PID=$!
# Keep the fifo's write end open so the REPL does not see EOF.
exec 9> "$FIFO"

printf '\\gen clustered 100000\nSELECT COUNT(*) FROM data WHERE v BETWEEN 1000 AND 5000;\nSELECT COUNT(*) FROM data WHERE v BETWEEN 1000 AND 5000;\n' >&9

# Wait for the telemetry banner (the server binds before the prompt).
URL=""
for _ in $(seq 1 50); do
  URL=$(grep -o 'http://[0-9.:]*' "$OUT" | head -1 || true)
  [ -n "$URL" ] && break
  sleep 0.2
done
if [ -z "$URL" ]; then
  echo "telemetry URL never appeared; demo output:" >&2
  cat "$OUT" >&2
  exit 1
fi
echo "telemetry at $URL"

check_status() { # path [min_bytes]
  local path=$1 min=${2:-1} body code
  body=$(mktemp)
  code=$(curl -sS -o "$body" -w '%{http_code}' "$URL$path")
  if [ "$code" != "200" ]; then
    echo "GET $path -> $code" >&2
    cat "$body" >&2
    rm -f "$body"
    exit 1
  fi
  if [ "$(wc -c < "$body")" -lt "$min" ]; then
    echo "GET $path -> suspiciously small body" >&2
    rm -f "$body"
    exit 1
  fi
  echo "$body"
}

check_json() { # path
  local body
  body=$(check_status "$1")
  if ! python3 -m json.tool < "$body" > /dev/null 2>&1; then
    echo "GET $1 -> invalid JSON" >&2
    cat "$body" >&2
    rm -f "$body"
    exit 1
  fi
  rm -f "$body"
  echo "GET $1 -> 200, valid JSON"
}

METRICS=$(check_status /metrics 100)
grep -q '^adskip_queries_total' "$METRICS" || {
  echo "/metrics missing adskip_queries_total" >&2
  cat "$METRICS" >&2
  exit 1
}
rm -f "$METRICS"
echo "GET /metrics -> 200, Prometheus exposition"

check_json /metrics.json
check_json /traces
check_json '/traces?format=chrome'
check_json /slow
check_json /skipmap
check_json '/skipmap?zones=0'
check_json /events
check_json /runtime
check_json /history
check_json /alerts
check_json '/workload?sort=calls&k=5'
check_json /adaptation
check_json '/adaptation?dead=0'

# /workload must attribute the two COUNT queries above to one template
# with ? in place of the literals.
WL=$(check_status /workload)
python3 - "$WL" <<'PY'
import json, sys
w = json.load(open(sys.argv[1]))
assert len(w["templates"]) >= 1, "no templates recorded"
t = w["templates"][0]
assert t["calls"] >= 2, f"calls {t['calls']} < 2"
assert "BETWEEN ? AND ?" in t["fingerprint"], f"unstripped fingerprint {t['fingerprint']!r}"
assert w["recorded_calls"] >= 2, "recorded_calls never moved"
PY
rm -f "$WL"
echo "GET /workload -> 200, >=1 template with calls"

WLCSV=$(check_status '/workload?format=csv')
head -1 "$WLCSV" | grep -q '^fingerprint,' || {
  echo "/workload?format=csv missing header" >&2
  cat "$WLCSV" >&2
  exit 1
}
rm -f "$WLCSV"
code=$(curl -sS -o /dev/null -w '%{http_code}' "$URL/workload?sort=junk")
if [ "$code" != "400" ]; then
  echo "GET /workload?sort=junk -> $code, want 400" >&2
  exit 1
fi
echo "GET /workload -> CSV export + 400 on bad sort"

# /adaptation: hammer one hot range template until the adaptive zonemap
# splits, then assert the ledger journaled the split with the triggering
# template and the ROI row credits nonzero skipped rows.
AD=$(mktemp)
ok=""
for _ in $(seq 1 40); do
  printf 'SELECT COUNT(*) FROM data WHERE v BETWEEN 1000 AND 5000;\n' >&9
  curl -sS -o "$AD" "$URL/adaptation"
  if python3 - "$AD" <<'PY'
import json, sys
a = json.load(open(sys.argv[1]))
splits = [e for e in a["events"] if e["kind"] == "split"]
ok = (splits
      and any(e.get("fingerprint") for e in splits)
      and any(r["rows_skipped"] > 0 for r in a["roi"]))
sys.exit(0 if ok else 1)
PY
  then ok=1; break; fi
  sleep 0.2
done
if [ -z "$ok" ]; then
  echo "/adaptation never showed a fingerprinted split + nonzero ROI:" >&2
  cat "$AD" >&2
  exit 1
fi
rm -f "$AD"
ADCSV=$(check_status '/adaptation?format=csv')
head -1 "$ADCSV" | grep -q '^table,shard,column,kind,' || {
  echo "/adaptation?format=csv missing header" >&2
  cat "$ADCSV" >&2
  exit 1
}
rm -f "$ADCSV"
code=$(curl -sS -o /dev/null -w '%{http_code}' "$URL/adaptation?shard=abc")
if [ "$code" != "400" ]; then
  echo "GET /adaptation?shard=abc -> $code, want 400" >&2
  exit 1
fi
echo "GET /adaptation -> split events with template provenance, nonzero ROI, CSV export, 400 on bad shard"

# The dashboard is a self-contained HTML page (the demo serves it even
# without an adaptation sampler; the charts just stay empty).
DASH=$(check_status /dash 1000)
for needle in '<!DOCTYPE html>' '/history' '/skipmap' '/health' '/workload' '/adaptation' 'prefers-color-scheme'; do
  grep -qF "$needle" "$DASH" || {
    echo "/dash page missing $needle" >&2
    rm -f "$DASH"
    exit 1
  }
done
rm -f "$DASH"
echo "GET /dash -> 200, dashboard page"

# ---------------------------------------------------------------------------
# Health readiness flip: /health answers 200 while objectives are met,
# 503 while any objective burns critically, and 200 again after
# recovery. Slow queries are induced with the REPL's \fault command
# (scan-delay injection at scan checkpoints), not real overload, so the
# flip is deterministic.

HB=$(mktemp)
code=$(curl -sS -o "$HB" -w '%{http_code}' "$URL/health")
if [ "$code" != "200" ]; then
  echo "GET /health -> $code before any burn" >&2
  cat "$HB" >&2
  exit 1
fi
python3 - "$HB" <<'PY'
import json, sys
h = json.load(open(sys.argv[1]))
assert h["enabled"], "health monitor not enabled despite -slo-p95"
assert h["status"] == "ok", f"status {h['status']!r} before any burn"
assert any(o["signal"] == "latency_p95" for o in h["objectives"]), "p95 objective missing"
PY
echo "GET /health -> 200, status ok (objective declared)"

# Arm the fault and drive SUM queries: aggregation must read every row
# (no covered-count short-circuit), so each query crosses a scan
# checkpoint and sleeps 100ms — far beyond the 50ms p95 objective.
printf '\\fault scan-delay 100ms\n' >&9
code=""
for _ in $(seq 1 60); do
  printf 'SELECT SUM(v) FROM data WHERE v BETWEEN 0 AND 99999;\n' >&9
  code=$(curl -sS -o "$HB" -w '%{http_code}' "$URL/health" || true)
  [ "$code" = "503" ] && break
  sleep 0.25
done
if [ "$code" != "503" ]; then
  echo "/health never went 503 under induced slow queries (last: $code)" >&2
  cat "$HB" >&2
  cat "$OUT" >&2
  exit 1
fi
python3 - "$HB" <<'PY'
import json, sys
h = json.load(open(sys.argv[1]))
assert h["status"] == "critical", f"503 with status {h['status']!r}"
PY
echo "GET /health -> 503, status critical (burn-rate alert fired)"

# While critical: the readiness gauge on /metrics reflects it, and
# /alerts carries the active objective and the ok->critical transition.
MET=$(check_status /metrics 100)
grep -q '^adskip_health_status 2' "$MET" || {
  echo "/metrics: adskip_health_status is not 2 while critical" >&2
  grep '^adskip_health' "$MET" >&2 || true
  exit 1
}
rm -f "$MET"
ALERTS=$(check_status /alerts)
python3 - "$ALERTS" <<'PY'
import json, sys
a = json.load(open(sys.argv[1]))
assert len(a["active"]) >= 1, "no active alerts while critical"
assert any(t["to"] == "critical" for t in a["history"]), "no transition to critical in history"
assert a["total"] >= 1, "transition counter never moved"
PY
rm -f "$ALERTS"
echo "GET /alerts -> active alert + critical transition; /metrics readiness gauge flipped"

# Clear the fault; the burn decays out of the windows and hysteresis
# releases the alert. No traffic needed — idle ticks are healthy ticks.
printf '\\fault off\n' >&9
code=""
for _ in $(seq 1 120); do
  code=$(curl -sS -o "$HB" -w '%{http_code}' "$URL/health" || true)
  if [ "$code" = "200" ] && python3 -c '
import json, sys
h = json.load(open(sys.argv[1]))
sys.exit(0 if h["status"] == "ok" else 1)' "$HB"; then
    break
  fi
  code=""
  sleep 0.5
done
if [ "$code" != "200" ]; then
  echo "/health never recovered to 200/ok after clearing the fault" >&2
  cat "$HB" >&2
  exit 1
fi
MET=$(check_status /metrics 100)
grep -q '^adskip_health_status 0' "$MET" || {
  echo "/metrics: adskip_health_status did not return to 0" >&2
  grep '^adskip_health' "$MET" >&2 || true
  exit 1
}
rm -f "$MET" "$HB"
echo "GET /health -> 200, status ok again (hysteresis released the alert)"

# A labeled CPU profile: collect for 2s while SUM queries burn CPU inside
# the engine. Execution runs under pprof.Do with a query_template label,
# so any sample taken mid-query lands the label key in the profile's
# string table — visible as a literal even without decoding the proto.
PROFILE=$(mktemp)
curl -sS -o "$PROFILE" -w '%{http_code}' "$URL/debug/pprof/profile?seconds=2" > "$PROFILE.code" &
CURL_PID=$!
sleep 0.2
for _ in $(seq 1 800); do
  printf 'SELECT SUM(v) FROM data WHERE v BETWEEN 0 AND 99999;\n' >&9
done
wait $CURL_PID
code=$(cat "$PROFILE.code")
if [ "$code" != "200" ] || [ "$(wc -c < "$PROFILE")" -lt 64 ]; then
  echo "GET /debug/pprof/profile?seconds=2 -> $code or truncated body" >&2
  rm -f "$PROFILE" "$PROFILE.code"
  exit 1
fi
python3 - "$PROFILE" <<'PY'
import gzip, sys
data = gzip.open(sys.argv[1], "rb").read()
assert b"query_template" in data, "CPU profile carries no query_template label"
PY
rm -f "$PROFILE" "$PROFILE.code"
echo "GET /debug/pprof/profile?seconds=2 -> 200, query_template label present"

printf '\\quit\n' >&9
exec 9>&-
wait $DEMO_PID 2>/dev/null || true
echo "telemetry smoke: OK"
