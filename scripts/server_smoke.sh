#!/usr/bin/env bash
# Query-server smoke test: start adskip-server on a generated dataset,
# drive it with adskip-load on ≥50 concurrent connections, assert a
# zero-error run, check the server's counters on /metrics (including
# prepared-statement cache hits), then SIGTERM and require a clean
# drain. CI runs this to exercise the real binaries end to end — the
# protocol, session pool, statement cache, and graceful shutdown that
# in-process tests cover only piecewise.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
OUT=$(mktemp)
trap 'rm -f "$OUT"; kill $SRV_PID 2>/dev/null || true' EXIT

ROWS=200000
go build -o "$BIN/adskip-server" ./cmd/adskip-server
go build -o "$BIN/adskip-load" ./cmd/adskip-load

"$BIN/adskip-server" -addr 127.0.0.1:0 -telemetry 127.0.0.1:0 \
  -rows "$ROWS" -dist clustered > "$OUT" 2>&1 &
SRV_PID=$!

# Wait for both banners: the telemetry URL and the query listen address.
ADDR="" URL=""
for _ in $(seq 1 100); do
  URL=$(grep -o 'http://[0-9.:]*' "$OUT" | head -1 || true)
  ADDR=$(sed -n 's/^listening on //p' "$OUT" | head -1 || true)
  [ -n "$URL" ] && [ -n "$ADDR" ] && break
  sleep 0.2
done
if [ -z "$URL" ] || [ -z "$ADDR" ]; then
  echo "server never announced its addresses; output:" >&2
  cat "$OUT" >&2
  exit 1
fi
echo "server at $ADDR, telemetry at $URL"

# Closed-loop load: 64 connections, Zipf-skewed template mix. The
# binary exits non-zero if any request failed.
"$BIN/adskip-load" -addr "$ADDR" -conns 64 -duration 3s -domain "$ROWS" -seed 3
echo "plain load: 64 connections, zero errors"

# A short prepared-statement run over the same templates.
"$BIN/adskip-load" -addr "$ADDR" -conns 16 -duration 1s -domain "$ROWS" -seed 3 -prepared
echo "prepared load: zero errors"

# Timed load: every request carries a trace ID and asks for the server's
# latency breakdown. The binary exits 1 if any breakdown violates its
# invariants (attributed phases must sum to <= the server total, and the
# server total must fit inside the client-observed round trip), so this
# run asserts the timing contract end to end over a real network path.
TIMED=$(mktemp)
"$BIN/adskip-load" -addr "$ADDR" -conns 16 -duration 2s -domain "$ROWS" -seed 7 -timing | tee "$TIMED"
grep -q 'latency attribution' "$TIMED" || {
  echo "timed load printed no attribution table" >&2
  exit 1
}
rm -f "$TIMED"
echo "timed load: breakdowns within client-observed latency, zero violations"

# The adaptation timeline must have been sampling throughout the load:
# /history carries samples whose cumulative counters saw the workload.
HIST=$(mktemp)
code=$(curl -sS -o "$HIST" -w '%{http_code}' "$URL/history")
if [ "$code" != "200" ]; then
  echo "GET /history -> $code" >&2
  cat "$HIST" >&2
  exit 1
fi
python3 - "$HIST" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    h = json.load(f)
assert h["interval_ns"] > 0, "missing sampling interval"
assert len(h["samples"]) >= 2, f"only {len(h['samples'])} samples after seconds of load"
last = h["samples"][-1]
assert last["queries"] > 0, "timeline never saw a query"
assert any(c["column"] == "v" for c in last["columns"]), "column v missing from timeline"
PY
rm -f "$HIST"
echo "GET /history -> 200, timeline sampled the load"

# And the dashboard that renders it.
code=$(curl -sS -o /dev/null -w '%{http_code}' "$URL/dash")
if [ "$code" != "200" ]; then
  echo "GET /dash -> $code" >&2
  exit 1
fi
echo "GET /dash -> 200"

# The server's own counters must be on the shared /metrics endpoint.
# Give the server a moment to reap the load generator's closed sessions
# so the active-connections gauge is back to zero.
sleep 1
METRICS=$(mktemp)
code=$(curl -sS -o "$METRICS" -w '%{http_code}' "$URL/metrics")
if [ "$code" != "200" ]; then
  echo "GET /metrics -> $code" >&2
  cat "$METRICS" >&2
  exit 1
fi
for metric in adskip_server_connections_total adskip_server_frames_read_total \
              adskip_server_request_seconds adskip_server_stmt_cache_hits_total; do
  grep -q "^$metric" "$METRICS" || {
    echo "/metrics missing $metric" >&2
    cat "$METRICS" >&2
    exit 1
  }
done
hits=$(awk '$1 == "adskip_server_stmt_cache_hits_total" {print int($2)}' "$METRICS")
if [ -z "$hits" ] || [ "$hits" -le 0 ]; then
  echo "statement cache shows no hits (got: ${hits:-none})" >&2
  exit 1
fi
active=$(awk '$1 == "adskip_server_active_connections" {print int($2)}' "$METRICS")
if [ -n "$active" ] && [ "$active" -ne 0 ]; then
  echo "active connections not back to 0 after load: $active" >&2
  exit 1
fi
rm -f "$METRICS"
echo "GET /metrics -> 200, server counters present, stmt cache hits: $hits"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM $SRV_PID
if ! wait $SRV_PID; then
  echo "server exited non-zero on SIGTERM; output:" >&2
  cat "$OUT" >&2
  exit 1
fi
SRV_PID=
grep -q '^drained$' "$OUT" || {
  echo "server did not report a drained shutdown; output:" >&2
  cat "$OUT" >&2
  exit 1
}
echo "shutdown: drained cleanly"
echo "server smoke: OK"
