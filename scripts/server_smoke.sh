#!/usr/bin/env bash
# Query-server smoke test: start adskip-server on a generated dataset,
# drive it with adskip-load on ≥50 concurrent connections, assert a
# zero-error run, check the server's counters on /metrics (including
# prepared-statement cache hits), then SIGTERM and require a clean
# drain. CI runs this to exercise the real binaries end to end — the
# protocol, session pool, statement cache, and graceful shutdown that
# in-process tests cover only piecewise.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
OUT=$(mktemp)
trap 'rm -f "$OUT"; kill $SRV_PID 2>/dev/null || true' EXIT

ROWS=200000
go build -o "$BIN/adskip-server" ./cmd/adskip-server
go build -o "$BIN/adskip-load" ./cmd/adskip-load

# SLO flags: a generous 250ms p95 objective (honest load never trips it,
# even on a noisy CI box) with tight windows and fast sampling so the
# induced burn and the recovery both land within smoke-test patience.
# -fault-scan-delay arms SIGUSR1/SIGUSR2 as a runtime slow-scan toggle;
# -dist uniform makes range queries scan every row, so each one crosses
# scan checkpoints and feels the injected delay.
"$BIN/adskip-server" -addr 127.0.0.1:0 -telemetry 127.0.0.1:0 \
  -rows "$ROWS" -dist uniform \
  -slo-p95 250ms -slo-windows 2s,6s,20s -history-interval 250ms \
  -fault-scan-delay 150ms > "$OUT" 2>&1 &
SRV_PID=$!

# Wait for both banners: the telemetry URL and the query listen address.
ADDR="" URL=""
for _ in $(seq 1 100); do
  URL=$(grep -o 'http://[0-9.:]*' "$OUT" | head -1 || true)
  ADDR=$(sed -n 's/^listening on //p' "$OUT" | head -1 || true)
  [ -n "$URL" ] && [ -n "$ADDR" ] && break
  sleep 0.2
done
if [ -z "$URL" ] || [ -z "$ADDR" ]; then
  echo "server never announced its addresses; output:" >&2
  cat "$OUT" >&2
  exit 1
fi
echo "server at $ADDR, telemetry at $URL"

# Closed-loop load: 64 connections, Zipf-skewed template mix. The
# binary exits non-zero if any request failed.
"$BIN/adskip-load" -addr "$ADDR" -conns 64 -duration 3s -domain "$ROWS" -seed 3
echo "plain load: 64 connections, zero errors"

# A short prepared-statement run over the same templates.
"$BIN/adskip-load" -addr "$ADDR" -conns 16 -duration 1s -domain "$ROWS" -seed 3 -prepared
echo "prepared load: zero errors"

# Timed load: every request carries a trace ID and asks for the server's
# latency breakdown. The binary exits 1 if any breakdown violates its
# invariants (attributed phases must sum to <= the server total, and the
# server total must fit inside the client-observed round trip), so this
# run asserts the timing contract end to end over a real network path.
TIMED=$(mktemp)
"$BIN/adskip-load" -addr "$ADDR" -conns 16 -duration 2s -domain "$ROWS" -seed 7 -timing | tee "$TIMED"
grep -q 'latency attribution' "$TIMED" || {
  echo "timed load printed no attribution table" >&2
  exit 1
}
rm -f "$TIMED"
echo "timed load: breakdowns within client-observed latency, zero violations"

# The adaptation timeline must have been sampling throughout the load:
# /history carries samples whose cumulative counters saw the workload.
HIST=$(mktemp)
code=$(curl -sS -o "$HIST" -w '%{http_code}' "$URL/history")
if [ "$code" != "200" ]; then
  echo "GET /history -> $code" >&2
  cat "$HIST" >&2
  exit 1
fi
python3 - "$HIST" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    h = json.load(f)
assert h["interval_ns"] > 0, "missing sampling interval"
assert len(h["samples"]) >= 2, f"only {len(h['samples'])} samples after seconds of load"
last = h["samples"][-1]
assert last["queries"] > 0, "timeline never saw a query"
assert any(c["column"] == "v" for c in last["columns"]), "column v missing from timeline"
PY
rm -f "$HIST"
echo "GET /history -> 200, timeline sampled the load"

# And the dashboard that renders it.
code=$(curl -sS -o /dev/null -w '%{http_code}' "$URL/dash")
if [ "$code" != "200" ]; then
  echo "GET /dash -> $code" >&2
  exit 1
fi
echo "GET /dash -> 200"

# ---------------------------------------------------------------------------
# Health readiness flip: 200 while the p95 objective is met, 503 during
# an induced slow-scan burst (SIGUSR1 arms the scan-delay fault), 200
# again after recovery (SIGUSR2 clears it). This exercises the whole
# loop end to end: sampler -> burn-rate monitor -> /health readiness ->
# server load shedding -> hysteresis release.

HB=$(mktemp)
code=$(curl -sS -o "$HB" -w '%{http_code}' "$URL/health")
if [ "$code" != "200" ]; then
  echo "GET /health -> $code before any burn" >&2
  cat "$HB" >&2
  exit 1
fi
python3 - "$HB" <<'PY'
import json, sys
h = json.load(open(sys.argv[1]))
assert h["enabled"], "health monitor not enabled despite -slo-p95"
assert h["status"] == "ok", f"status {h['status']!r} before any burn"
PY
echo "GET /health -> 200, status ok"

# The load generator's own SLO acceptance check against the healthy server.
"$BIN/adskip-load" -addr "$ADDR" -conns 8 -duration 1s -domain "$ROWS" -seed 11 \
  -assert-health "$URL/health"
echo "adskip-load -assert-health: passes while healthy"

# Arm the fault and load the server: every scan checkpoint now sleeps
# 150ms, so queries blow the 250ms p95 objective and the monitor burns
# to critical. Once critical, the server refuses queries (load sheds),
# so the load run is expected to report errors — tolerate its exit code.
kill -USR1 $SRV_PID
"$BIN/adskip-load" -addr "$ADDR" -conns 8 -duration 12s -domain "$ROWS" -seed 13 \
  >/dev/null 2>&1 || true &
LOAD_PID=$!
code=""
for _ in $(seq 1 60); do
  code=$(curl -sS -o "$HB" -w '%{http_code}' "$URL/health" || true)
  [ "$code" = "503" ] && break
  sleep 0.25
done
if [ "$code" != "503" ]; then
  echo "/health never went 503 under the induced slow-scan burst (last: $code)" >&2
  cat "$HB" >&2
  cat "$OUT" >&2
  exit 1
fi
python3 - "$HB" <<'PY'
import json, sys
h = json.load(open(sys.argv[1]))
assert h["status"] == "critical", f"503 with status {h['status']!r}"
PY
echo "GET /health -> 503, status critical (readiness probe would eject this node)"

# While critical: the /metrics readiness gauge flips, /alerts records
# the transition, and the query service refuses traffic.
MET=$(mktemp)
curl -sS -o "$MET" "$URL/metrics"
grep -q '^adskip_health_status 2' "$MET" || {
  echo "/metrics: adskip_health_status is not 2 while critical" >&2
  grep '^adskip_health' "$MET" >&2 || true
  exit 1
}
rejected=""
for _ in $(seq 1 40); do
  curl -sS -o "$MET" "$URL/metrics"
  rejected=$(awk '$1 == "adskip_server_rejected_total" {print int($2)}' "$MET")
  [ -n "$rejected" ] && [ "$rejected" -gt 0 ] && break
  sleep 0.25
done
if [ -z "$rejected" ] || [ "$rejected" -le 0 ]; then
  echo "server never refused a query while critical (adskip_server_rejected_total: ${rejected:-absent})" >&2
  exit 1
fi
rm -f "$MET"
code=$(curl -sS -o "$HB" -w '%{http_code}' "$URL/alerts")
if [ "$code" != "200" ]; then
  echo "GET /alerts -> $code" >&2
  exit 1
fi
python3 - "$HB" <<'PY'
import json, sys
a = json.load(open(sys.argv[1]))
assert len(a["active"]) >= 1, "no active alerts while critical"
assert any(t["to"] == "critical" for t in a["history"]), "no transition to critical in history"
PY
echo "readiness gauge flipped, $rejected queries shed, /alerts shows the transition"

# Recovery: clear the fault, let the bad ticks age out of the burn
# windows, and require the probe to report ready again.
wait $LOAD_PID || true
kill -USR2 $SRV_PID
code=""
for _ in $(seq 1 120); do
  code=$(curl -sS -o "$HB" -w '%{http_code}' "$URL/health" || true)
  if [ "$code" = "200" ] && python3 -c '
import json, sys
h = json.load(open(sys.argv[1]))
sys.exit(0 if h["status"] == "ok" else 1)' "$HB"; then
    break
  fi
  code=""
  sleep 0.5
done
if [ "$code" != "200" ]; then
  echo "/health never recovered to 200/ok after SIGUSR2" >&2
  cat "$HB" >&2
  exit 1
fi
rm -f "$HB"
"$BIN/adskip-load" -addr "$ADDR" -conns 8 -duration 1s -domain "$ROWS" -seed 17 \
  -assert-health "$URL/health"
echo "GET /health -> 200, status ok again; post-recovery load passes -assert-health"

# The server's own counters must be on the shared /metrics endpoint.
# Give the server a moment to reap the load generator's closed sessions
# so the active-connections gauge is back to zero.
sleep 1
METRICS=$(mktemp)
code=$(curl -sS -o "$METRICS" -w '%{http_code}' "$URL/metrics")
if [ "$code" != "200" ]; then
  echo "GET /metrics -> $code" >&2
  cat "$METRICS" >&2
  exit 1
fi
for metric in adskip_server_connections_total adskip_server_frames_read_total \
              adskip_server_request_seconds adskip_server_stmt_cache_hits_total \
              adskip_health_status adskip_health_ticks_total adskip_objective_state \
              adskip_server_rejected_total; do
  grep -q "^$metric" "$METRICS" || {
    echo "/metrics missing $metric" >&2
    cat "$METRICS" >&2
    exit 1
  }
done
hits=$(awk '$1 == "adskip_server_stmt_cache_hits_total" {print int($2)}' "$METRICS")
if [ -z "$hits" ] || [ "$hits" -le 0 ]; then
  echo "statement cache shows no hits (got: ${hits:-none})" >&2
  exit 1
fi
active=$(awk '$1 == "adskip_server_active_connections" {print int($2)}' "$METRICS")
if [ -n "$active" ] && [ "$active" -ne 0 ]; then
  echo "active connections not back to 0 after load: $active" >&2
  exit 1
fi
rm -f "$METRICS"
echo "GET /metrics -> 200, server counters present, stmt cache hits: $hits"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM $SRV_PID
if ! wait $SRV_PID; then
  echo "server exited non-zero on SIGTERM; output:" >&2
  cat "$OUT" >&2
  exit 1
fi
SRV_PID=
grep -q '^drained$' "$OUT" || {
  echo "server did not report a drained shutdown; output:" >&2
  cat "$OUT" >&2
  exit 1
}
echo "shutdown: drained cleanly"

# ---------------------------------------------------------------------------
# Sharded server: the same binaries with -shards 4 partitioning "data"
# on the query column. The Zipf template mix concentrates range
# predicates, so the scatter-gather layer must prune whole shards —
# asserted via adskip_shard_pruned_total on /metrics.

: > "$OUT"
"$BIN/adskip-server" -addr 127.0.0.1:0 -telemetry 127.0.0.1:0 \
  -rows "$ROWS" -dist uniform -shards 4 -shard-key v > "$OUT" 2>&1 &
SRV_PID=$!

ADDR="" URL=""
for _ in $(seq 1 100); do
  URL=$(grep -o 'http://[0-9.:]*' "$OUT" | head -1 || true)
  ADDR=$(sed -n 's/^listening on //p' "$OUT" | head -1 || true)
  [ -n "$URL" ] && [ -n "$ADDR" ] && break
  sleep 0.2
done
if [ -z "$URL" ] || [ -z "$ADDR" ]; then
  echo "sharded server never announced its addresses; output:" >&2
  cat "$OUT" >&2
  exit 1
fi
grep -q '^sharded: 4 shards' "$OUT" || {
  echo "sharded server did not announce its shard layout; output:" >&2
  cat "$OUT" >&2
  exit 1
}
echo "sharded server at $ADDR (4 shards), telemetry at $URL"

"$BIN/adskip-load" -addr "$ADDR" -conns 32 -duration 3s -domain "$ROWS" -seed 5
echo "sharded load: 32 connections, zero errors"

MET=$(mktemp)
curl -sS -o "$MET" "$URL/metrics"
pruned=$(awk '$1 ~ /^adskip_shard_pruned_total/ {sum += int($2)} END {print sum+0}' "$MET")
scanned=$(awk '$1 ~ /^adskip_shard_scanned_total/ {sum += int($2)} END {print sum+0}' "$MET")
if [ "$pruned" -le 0 ]; then
  echo "adskip_shard_pruned_total is $pruned after a Zipf range load — shard pruning never fired" >&2
  grep '^adskip_shard' "$MET" >&2 || true
  exit 1
fi
echo "shard pruning active: $pruned shards pruned, $scanned scanned"

# The per-shard dimension is on /skipmap, and bad shard filters are 400s.
code=$(curl -sS -o /dev/null -w '%{http_code}' "$URL/skipmap?shard=2")
[ "$code" = "200" ] || { echo "GET /skipmap?shard=2 -> $code" >&2; exit 1; }
code=$(curl -sS -o /dev/null -w '%{http_code}' "$URL/skipmap?shard=99")
[ "$code" = "400" ] || { echo "GET /skipmap?shard=99 -> $code, want 400" >&2; exit 1; }
code=$(curl -sS -o /dev/null -w '%{http_code}' "$URL/workload?shard=abc")
[ "$code" = "400" ] || { echo "GET /workload?shard=abc -> $code, want 400" >&2; exit 1; }
rm -f "$MET"
echo "per-shard telemetry filters: 200 on valid shard, 400 on bad"

kill -TERM $SRV_PID
if ! wait $SRV_PID; then
  echo "sharded server exited non-zero on SIGTERM; output:" >&2
  cat "$OUT" >&2
  exit 1
fi
SRV_PID=
grep -q '^drained$' "$OUT" || {
  echo "sharded server did not report a drained shutdown; output:" >&2
  cat "$OUT" >&2
  exit 1
}
echo "sharded shutdown: drained cleanly"
echo "server smoke: OK"
