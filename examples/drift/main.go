// Drift: the workload-adaptivity demonstration. A hot range of the key
// space receives all queries; adaptive zonemaps refine exactly there.
// Then the hot range jumps. The example prints per-phase latency showing
// the brief re-adaptation spike and re-convergence — behavior no static
// structure exhibits.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"adskip"
	"adskip/internal/workload"
)

const (
	rows     = 2_000_000
	perPhase = 200
)

func main() {
	db := adskip.Open(adskip.Options{Policy: adskip.Adaptive})
	tab, err := db.CreateTable("events", adskip.Col("key", adskip.Int64))
	if err != nil {
		log.Fatal(err)
	}
	// Clustered keys: local value locality, no global order.
	for _, v := range workload.Generate(workload.DataSpec{
		N: rows, Dist: workload.Clustered, Domain: rows, Seed: 3,
	}) {
		if err := tab.Append(v); err != nil {
			log.Fatal(err)
		}
	}
	if err := tab.EnableSkipping(); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	phase := func(name string, hotLo int64) {
		hotWidth := int64(rows / 20) // hot region: 5% of the key space
		qWidth := int64(rows / 500)  // each query: 0.2%
		var first, rest time.Duration
		for q := 0; q < perPhase; q++ {
			lo := hotLo + rng.Int63n(hotWidth-qWidth)
			sql := fmt.Sprintf("SELECT COUNT(*) FROM events WHERE key BETWEEN %d AND %d", lo, lo+qWidth)
			start := time.Now()
			if _, err := db.Exec(sql); err != nil {
				log.Fatal(err)
			}
			d := time.Since(start)
			if q < perPhase/10 {
				first += d
			} else {
				rest += d
			}
		}
		info := tab.SkipperInfo()["key"]
		fmt.Printf("%-26s first %d queries: %7.3fms/q | remaining: %7.3fms/q | zones=%d\n",
			name,
			perPhase/10, float64(first.Nanoseconds())/float64(perPhase/10)/1e6,
			float64(rest.Nanoseconds())/float64(perPhase-perPhase/10)/1e6,
			info.Zones)
	}

	fmt.Printf("events: %d clustered keys; hot range carries all queries\n\n", rows)
	phase("phase 1 (hot @ 10%):", rows/10)
	phase("phase 1 again (warm):", rows/10)
	phase("phase 2 (hot jumps to 70%):", rows*7/10)
	phase("phase 2 again (re-warmed):", rows*7/10)
	fmt.Println("\nexpected: each phase's first queries are slower, then adaptation restores speed")
}
