// Persistence: warm restarts. A first "process" loads data, lets the
// adaptive zonemap learn from a query stream, and snapshots both the table
// and the learned skipping metadata. A second "process" restores both and
// gets converged-query performance from its very first query — the
// refinement paid for yesterday is not re-paid today.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"adskip"
	"adskip/internal/workload"
)

const (
	rows    = 2_000_000
	queries = 800
)

// opts scales adaptive granularity to the dataset (the same scaling the
// experiment harness uses).
var opts = adskip.Options{
	Policy: adskip.Adaptive,
	Adaptive: adskip.AdaptiveConfig{
		InitialZoneRows: rows / 256,
		MinZoneRows:     256, // below the cluster width so zones settle onto band edges
	},
}

// hotQueries measures a short hot-range stream and returns avg latency.
func hotQueries(db *adskip.DB, n int, seed int64) time.Duration {
	rng := rand.New(rand.NewSource(seed))
	var total time.Duration
	for q := 0; q < n; q++ {
		lo := int64(rows/4) + rng.Int63n(rows/10)
		sql := fmt.Sprintf("SELECT COUNT(*) FROM events WHERE key BETWEEN %d AND %d", lo, lo+rows/500)
		start := time.Now()
		if _, err := db.Exec(sql); err != nil {
			log.Fatal(err)
		}
		total += time.Since(start)
	}
	return total / time.Duration(n)
}

func loadTable(db *adskip.DB) *adskip.Table {
	tab, err := db.CreateTable("events", adskip.Col("key", adskip.Int64))
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range workload.Generate(workload.DataSpec{
		N: rows, Dist: workload.Clustered, Domain: rows, Clusters: 2048, Seed: 5,
	}) {
		if err := tab.Append(v); err != nil {
			log.Fatal(err)
		}
	}
	if err := tab.EnableSkipping(); err != nil {
		log.Fatal(err)
	}
	return tab
}

func main() {
	// ---- Process 1: learn, then snapshot. ----
	db1 := adskip.Open(opts)
	tab1 := loadTable(db1)

	cold := hotQueries(db1, 20, 1)
	_ = hotQueries(db1, queries, 2) // the learning stream
	warm := hotQueries(db1, 100, 9) // steady state after adaptation
	fmt.Printf("process 1: first queries %8.3fms/q, after adaptation %8.3fms/q (%d zones)\n",
		float64(cold.Nanoseconds())/1e6, float64(warm.Nanoseconds())/1e6,
		tab1.SkipperInfo()["key"].Zones)

	var tableSnap, skipSnap bytes.Buffer
	if err := db1.SaveTable("events", &tableSnap); err != nil {
		log.Fatal(err)
	}
	if err := tab1.SaveSkipping("key", &skipSnap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshots: table %d bytes, learned metadata %d bytes\n",
		tableSnap.Len(), skipSnap.Len())

	// ---- Process 2a: restore the table only (cold metadata). ----
	db2 := adskip.Open(opts)
	tab2, err := db2.LoadTable(bytes.NewReader(tableSnap.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	if err := tab2.EnableSkipping(); err != nil {
		log.Fatal(err)
	}
	coldRestart := hotQueries(db2, 20, 3)

	// ---- Process 2b: restore table AND learned metadata (warm). ----
	db3 := adskip.Open(opts)
	tab3, err := db3.LoadTable(bytes.NewReader(tableSnap.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	if err := tab3.LoadSkipping("key", bytes.NewReader(skipSnap.Bytes())); err != nil {
		log.Fatal(err)
	}
	warmRestart := hotQueries(db3, 20, 3)

	fmt.Printf("restart without metadata: first queries %8.3fms/q\n", float64(coldRestart.Nanoseconds())/1e6)
	fmt.Printf("restart with metadata:    first queries %8.3fms/q (%d zones restored)\n",
		float64(warmRestart.Nanoseconds())/1e6, tab3.SkipperInfo()["key"].Zones)
	fmt.Println("\nexpected: the metadata-restored engine starts at converged speed")
}
