// Quickstart: create a table, ingest rows, enable adaptive skipping, and
// run SQL — the smallest end-to-end use of the adskip public API.
package main

import (
	"fmt"
	"log"

	"adskip"
)

func main() {
	db := adskip.Open(adskip.Options{Policy: adskip.Adaptive})

	tab, err := db.CreateTable("sales",
		adskip.Col("id", adskip.Int64),
		adskip.Col("price", adskip.Float64),
		adskip.Col("city", adskip.String),
	)
	if err != nil {
		log.Fatal(err)
	}

	cities := []string{"oslo", "rome", "cairo", "lima", "kyoto"}
	for i := 0; i < 100_000; i++ {
		// Prices arrive loosely ordered (a promotion ramp), cities cycle.
		price := float64(i%10_000) + float64(i)/1_000
		if err := tab.Append(i, price, cities[(i/20_000)%len(cities)]); err != nil {
			log.Fatal(err)
		}
	}
	if err := tab.EnableSkipping(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows\n", tab.NumRows())

	queries := []string{
		"SELECT COUNT(*) FROM sales WHERE price BETWEEN 100 AND 200",
		"SELECT COUNT(*), AVG(price) FROM sales WHERE city = 'rome'",
		"SELECT id, price FROM sales WHERE city = 'kyoto' AND price < 5 LIMIT 3",
		"SELECT MIN(price), MAX(price) FROM sales WHERE id >= 90000",
	}
	for _, q := range queries {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", q)
		switch {
		case len(res.Rows) > 0:
			for _, row := range res.Rows {
				fmt.Printf("  %v\n", row)
			}
		default:
			fmt.Printf("  -> %v\n", res.Aggs)
		}
		fmt.Printf("  scanned=%d skipped=%d covered=%d rows\n",
			res.Stats.RowsScanned, res.Stats.RowsSkipped, res.Stats.RowsCovered)
	}

	fmt.Println("\nskipping metadata:")
	for col, info := range tab.SkipperInfo() {
		fmt.Printf("  %-6s %s: %d zones, %d bytes, enabled=%v\n",
			col, info.Kind, info.Zones, info.Bytes, info.Enabled)
	}
}
