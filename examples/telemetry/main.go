// Telemetry: the paper's semi-sorted motivation. Sensor readings arrive
// almost ordered by timestamp (several sources, slight interleaving), the
// table keeps growing, and dashboards repeatedly query recent time
// windows. Adaptive zonemaps exploit the near-order, fold appended tails
// into new zones, and keep dashboard latency low without any tuning.
//
// Timing and pruning figures come from the engine's built-in
// observability layer: each Result carries a QueryTrace with
// engine-measured phase timings, and the run ends with a Prometheus-text
// dump of the database's cumulative metrics registry.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"adskip"
)

const (
	initialRows = 400_000
	appendRows  = 100_000
	batches     = 4
	queriesPer  = 64
)

func main() {
	db := adskip.Open(adskip.Options{Policy: adskip.Adaptive})
	tab, err := db.CreateTable("readings",
		adskip.Col("ts", adskip.Int64), // epoch milliseconds, near-sorted
		adskip.Col("sensor", adskip.Int64),
		adskip.Col("value", adskip.Float64),
	)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	now := int64(0)
	ingest := func(n int) {
		for i := 0; i < n; i++ {
			// Timestamps advance with small out-of-order jitter: semi-sorted.
			now += rng.Int63n(3)
			ts := now - rng.Int63n(20)
			if err := tab.Append(ts, rng.Int63n(64), rng.NormFloat64()*10+50); err != nil {
				log.Fatal(err)
			}
		}
	}

	ingest(initialRows)
	if err := tab.EnableSkipping("ts"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial load: %d rows spanning ts [0, %d]\n", tab.NumRows(), now)

	dashboard := func(label string) {
		var totalNs int64
		var scanned, skipped int64
		for q := 0; q < queriesPer; q++ {
			// Dashboards look at recent windows: the last ~2% of time.
			width := now / 50
			lo := now - width - rng.Int63n(width)
			sql := fmt.Sprintf(
				"SELECT COUNT(*), AVG(value) FROM readings WHERE ts BETWEEN %d AND %d", lo, lo+width)
			res, err := db.Exec(sql)
			if err != nil {
				log.Fatal(err)
			}
			// The engine times every query itself: no stopwatch needed.
			totalNs += res.Trace.Total.Nanoseconds()
			scanned += int64(res.Stats.RowsScanned)
			skipped += int64(res.Stats.RowsSkipped)
		}
		fmt.Printf("%-28s avg %8.3fms | rows/query: scanned %8d, skipped %8d (%.0f%%)\n",
			label,
			float64(totalNs)/float64(queriesPer)/1e6,
			scanned/int64(queriesPer), skipped/int64(queriesPer),
			float64(skipped)/float64(scanned+skipped)*100)
	}

	dashboard("cold metadata:")
	dashboard("warm (after adaptation):")

	for b := 1; b <= batches; b++ {
		ingest(appendRows)
		dashboard(fmt.Sprintf("after append batch %d:", b))
	}

	info := tab.SkipperInfo()["ts"]
	fmt.Printf("\nfinal ts metadata: %d zones, %d bytes over %d rows (%.4f bytes/row)\n",
		info.Zones, info.Bytes, tab.NumRows(), float64(info.Bytes)/float64(tab.NumRows()))

	if evs := db.AdaptationEvents(); len(evs) > 0 {
		fmt.Printf("\nadaptation events: %d (last: #%d %s on %s.%s, now %d zones)\n",
			len(evs), evs[len(evs)-1].Seq, evs[len(evs)-1].Kind,
			evs[len(evs)-1].Table, evs[len(evs)-1].Column, evs[len(evs)-1].Zones)
	}

	fmt.Printf("\n-- cumulative metrics (Prometheus text format) --\n")
	if err := db.Metrics().WritePrometheus(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
