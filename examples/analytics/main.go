// Analytics: a sales fact table with clustered and arbitrary columns,
// queried by an ad-hoc dashboard. The example runs the same workload
// under all three skipping policies and prints the comparison the paper
// makes: adaptive matches the baseline where skipping cannot help and
// beats both baselines where it can.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"adskip"
)

const (
	rows    = 1_000_000
	queries = 128
)

var regions = []string{"apac", "emea", "latam", "noram"}

// load builds the fact table: order ids are ingest-ordered (sorted),
// store ids are clustered (data loads arrive store by store), and basket
// values are arbitrary.
func load(db *adskip.DB) *adskip.Table {
	tab, err := db.CreateTable("orders",
		adskip.Col("order_id", adskip.Int64), // sorted
		adskip.Col("store", adskip.Int64),    // clustered: loads arrive per store
		adskip.Col("basket", adskip.Float64), // arbitrary
		adskip.Col("region", adskip.String),  // low cardinality
	)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	storesPerChunk := rows / 256
	for i := 0; i < rows; i++ {
		store := int64(i/storesPerChunk)*4 + rng.Int63n(4) // 4 stores per chunk
		err := tab.Append(i, store, rng.Float64()*500, regions[rng.Intn(len(regions))])
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := tab.EnableSkipping(); err != nil {
		log.Fatal(err)
	}
	return tab
}

func run(policy adskip.Policy, name string) {
	db := adskip.Open(adskip.Options{Policy: policy})
	load(db)
	rng := rand.New(rand.NewSource(11))
	var total time.Duration
	var skipped int64
	for q := 0; q < queries; q++ {
		var sql string
		switch q % 3 {
		case 0: // recent orders
			lo := rng.Int63n(rows - rows/100)
			sql = fmt.Sprintf("SELECT COUNT(*), SUM(basket) FROM orders WHERE order_id BETWEEN %d AND %d",
				lo, lo+rows/100)
		case 1: // one store chain's performance
			s := rng.Int63n(1000)
			sql = fmt.Sprintf("SELECT COUNT(*), AVG(basket) FROM orders WHERE store BETWEEN %d AND %d",
				s, s+10)
		case 2: // region slice over a store range
			s := rng.Int63n(1000)
			sql = fmt.Sprintf(
				"SELECT COUNT(*) FROM orders WHERE store BETWEEN %d AND %d AND region = '%s'",
				s, s+40, regions[rng.Intn(len(regions))])
		}
		start := time.Now()
		res, err := db.Exec(sql)
		if err != nil {
			log.Fatal(err)
		}
		total += time.Since(start)
		skipped += int64(res.Stats.RowsSkipped)
	}
	fmt.Printf("%-9s avg %8.3fms/query, %5.1f%% of candidate rows skipped\n",
		name,
		float64(total.Nanoseconds())/float64(queries)/1e6,
		float64(skipped)/float64(int64(queries)*rows*2)*100) // ~2 predicate cols/query
}

func main() {
	fmt.Printf("orders fact table: %d rows, %d dashboard queries\n\n", rows, queries)
	run(adskip.None, "none")
	run(adskip.Static, "static")
	run(adskip.Adaptive, "adaptive")
	fmt.Println("\nexpected: adaptive ≥ static ≥ none on this mixed workload")
}
