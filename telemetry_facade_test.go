package adskip

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// seededDB builds a DB with a table large enough to carry adaptive zone
// structure, runs a query stream so counters and traces accumulate, and
// returns it.
func seededDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db := Open(opts)
	tab, err := db.CreateTable("events", Col("v", Int64), Col("seq", Int64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if err := tab.Append((i/1000)*1000+i%7, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.EnableSkipping("v"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		lo := (i % 20) * 1000
		if _, err := db.Exec("SELECT COUNT(*) FROM events WHERE v BETWEEN " +
			itoa(lo) + " AND " + itoa(lo+6)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestSkipmapShape locks the /skipmap JSON shape end to end: seeded table,
// real adaptive skipper, served over HTTP.
func TestSkipmapShape(t *testing.T) {
	db := seededDB(t, Options{Policy: Adaptive})
	defer db.Close()

	// The in-process view first.
	tables := db.Skipmap(-1)
	if len(tables) != 1 || tables[0].Table != "events" || tables[0].Rows != 20000 {
		t.Fatalf("Skipmap = %+v, want one 20000-row table \"events\"", tables)
	}
	var vcol bool
	for _, c := range tables[0].Columns {
		if c.Column != "v" {
			continue
		}
		vcol = true
		if c.Kind != "adaptive-zonemap" && c.Kind != "adaptive" {
			t.Errorf("kind = %q, want adaptive", c.Kind)
		}
		if !c.Enabled || c.Quarantined {
			t.Errorf("enabled=%v quarantined=%v, want on and clean", c.Enabled, c.Quarantined)
		}
		if c.Probes == 0 || c.RowsSkipped == 0 {
			t.Errorf("counters flat: probes=%d skipped=%d", c.Probes, c.RowsSkipped)
		}
		if len(c.ZoneDetail) != c.Zones || c.ZonesTruncated != 0 {
			t.Errorf("zone detail %d of %d zones (truncated %d), want all", len(c.ZoneDetail), c.Zones, c.ZonesTruncated)
		}
		var hits, misses uint64
		prevHi := 0
		for _, z := range c.ZoneDetail {
			if z.Lo != prevHi {
				t.Fatalf("zone detail not contiguous: lo=%d after hi=%d", z.Lo, prevHi)
			}
			prevHi = z.Hi
			hits += z.Hits
			misses += z.Misses
		}
		if prevHi != 20000 {
			t.Errorf("zones cover [0,%d), want [0,20000)", prevHi)
		}
		if hits == 0 || misses == 0 {
			t.Errorf("per-zone counters flat: hits=%d misses=%d", hits, misses)
		}
	}
	if !vcol {
		t.Fatal("column v missing from skipmap")
	}

	// Same data over HTTP, including the zone cap.
	url, err := db.StartTelemetry("")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(url + "/skipmap?zones=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/skipmap = %d", resp.StatusCode)
	}
	var served []SkipmapTable
	if err := json.Unmarshal(body, &served); err != nil {
		t.Fatalf("invalid /skipmap JSON: %v\n%s", err, body)
	}
	if len(served) != 1 || served[0].Table != "events" {
		t.Fatalf("served skipmap = %+v", served)
	}
	for _, c := range served[0].Columns {
		if len(c.ZoneDetail) > 2 {
			t.Errorf("column %q served %d zones, cap was 2", c.Column, len(c.ZoneDetail))
		}
		if c.Zones > 2 && c.ZonesTruncated != c.Zones-len(c.ZoneDetail) {
			t.Errorf("column %q truncation = %d, want %d", c.Column, c.ZonesTruncated, c.Zones-len(c.ZoneDetail))
		}
	}
}

func TestTraceRingAndSlowLog(t *testing.T) {
	db := seededDB(t, Options{Policy: Adaptive, TraceRingSize: 8, SlowQueryThreshold: time.Nanosecond})
	defer db.Close()
	traces := db.Traces()
	if len(traces) != 8 {
		t.Fatalf("trace ring holds %d, want 8 (capacity)", len(traces))
	}
	for _, tr := range traces {
		if tr.Root == nil {
			t.Fatal("ring trace missing span tree")
		}
		if !tr.Slow {
			t.Error("1ns threshold should mark every query slow")
		}
		names := map[string]bool{}
		for _, c := range tr.Root.Children() {
			names[c.Name] = true
		}
		for _, want := range []string{"parse", "plan", "prune", "scan"} {
			if !names[want] {
				t.Fatalf("span tree missing %q child: %v", want, tr.Root.TreeLines())
			}
		}
	}
	if len(db.SlowTraces()) == 0 {
		t.Fatal("slow log empty despite 1ns threshold")
	}
	// Without a threshold the slow log stays empty.
	db2 := seededDB(t, Options{Policy: Adaptive})
	defer db2.Close()
	if n := len(db2.SlowTraces()); n != 0 {
		t.Fatalf("slow log has %d entries with no threshold", n)
	}
}

// TestTelemetryLifecycle proves DB.Close tears the server and its runtime
// collector down without leaking goroutines.
func TestTelemetryLifecycle(t *testing.T) {
	db := seededDB(t, Options{Policy: Adaptive})
	before := runtime.NumGoroutine()

	url, err := db.StartTelemetry("")
	if err != nil {
		t.Fatal(err)
	}
	if db.TelemetryAddr() == "" || !strings.Contains(url, db.TelemetryAddr()) {
		t.Fatalf("TelemetryAddr %q vs URL %q", db.TelemetryAddr(), url)
	}
	if _, err := db.StartTelemetry(""); err == nil {
		t.Fatal("second StartTelemetry did not fail")
	}
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if db.TelemetryAddr() != "" {
		t.Fatal("TelemetryAddr non-empty after Close")
	}
	if _, err := http.Get(url + "/metrics"); err == nil {
		t.Fatal("server still serving after Close")
	}

	// The serve and collector goroutines must be gone. Allow the runtime a
	// moment to reap exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Close is idempotent, and a fresh server can start afterwards.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	url2, err := db.StartTelemetry("")
	if err != nil {
		t.Fatal(err)
	}
	if url2 == "" {
		t.Fatal("restart returned empty URL")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
