package adskip

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// shardedDB opens a DB sharded 4 ways on "id" and fills one table with
// 400 deterministic rows.
func shardedDB(t *testing.T, mode string) (*DB, *Table) {
	t.Helper()
	db := Open(Options{Policy: Adaptive, Shards: 4, ShardKey: "id", ShardBy: mode})
	tab, err := db.CreateTable("sales",
		Col("id", Int64), Col("price", Float64), Col("city", String))
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"oslo", "rome", "cairo", "lima"}
	rows := make([][]Value, 0, 400)
	for i := 0; i < 400; i++ {
		rows = append(rows, []Value{
			IntValue(int64(i)),
			FloatValue(float64(i) / 4),
			StringValue(cities[i%len(cities)]),
		})
	}
	if err := tab.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	if err := tab.EnableSkipping("id", "price"); err != nil {
		t.Fatal(err)
	}
	return db, tab
}

// TestShardedSQL drives the full SQL path — parse, plan, scatter-gather,
// merge — through a sharded DB and checks answers against what an
// unsharded DB computes over the same data.
func TestShardedSQL(t *testing.T) {
	for _, mode := range []string{"range", "hash"} {
		t.Run(mode, func(t *testing.T) {
			db, tab := shardedDB(t, mode)
			defer db.Close()
			if got := tab.Shards(); got != 4 {
				t.Fatalf("Shards() = %d, want 4", got)
			}
			if tab.Engine() != nil {
				t.Fatal("Engine() on a sharded table should be nil")
			}
			if tab.NumRows() != 400 {
				t.Fatalf("NumRows = %d, want 400", tab.NumRows())
			}

			ref := Open(Options{Policy: Adaptive})
			refTab, err := ref.CreateTable("sales",
				Col("id", Int64), Col("price", Float64), Col("city", String))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 400; i++ {
				cities := []string{"oslo", "rome", "cairo", "lima"}
				if err := refTab.Append(i, float64(i)/4, cities[i%4]); err != nil {
					t.Fatal(err)
				}
			}
			for _, q := range []string{
				"SELECT COUNT(*) FROM sales WHERE id BETWEEN 10 AND 40",
				"SELECT SUM(price), MIN(price), MAX(price) FROM sales WHERE id < 100",
				"SELECT AVG(price) FROM sales WHERE city = 'rome'",
				"SELECT id, price FROM sales WHERE id >= 390 ORDER BY id DESC LIMIT 5",
				"SELECT city, COUNT(*) FROM sales WHERE id < 200 GROUP BY city",
				"SELECT COUNT(*) FROM sales WHERE id > 100000",
			} {
				got, err := db.Exec(q)
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				want, err := ref.Exec(q)
				if err != nil {
					t.Fatalf("%s (ref): %v", q, err)
				}
				if got.Count != want.Count || fmt.Sprint(got.Aggs) != fmt.Sprint(want.Aggs) ||
					fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
					t.Errorf("%s:\nsharded  count=%d aggs=%v rows=%v\nunsharded count=%d aggs=%v rows=%v",
						q, got.Count, got.Aggs, got.Rows, want.Count, want.Aggs, want.Rows)
				}
			}
		})
	}
}

// TestShardedExplainAnalyze: EXPLAIN ANALYZE through the facade reports
// the shard-prune phase on a sharded table.
func TestShardedExplainAnalyze(t *testing.T) {
	db, _ := shardedDB(t, "range")
	defer db.Close()
	lines, res, err := db.ExplainAnalyze("SELECT COUNT(*) FROM sales WHERE id BETWEEN 0 AND 50")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ShardsPruned == 0 {
		t.Errorf("narrow key range pruned no shards (scanned %d)", res.Stats.ShardsScanned)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "shard") {
		t.Errorf("EXPLAIN ANALYZE has no shard line:\n%s", joined)
	}
}

// TestShardedSkipmap: DB.Skipmap expands a sharded table into per-shard
// snapshots with the shard dimension stamped.
func TestShardedSkipmap(t *testing.T) {
	db, _ := shardedDB(t, "range")
	defer db.Close()
	tables := db.Skipmap(8)
	if len(tables) != 4 {
		t.Fatalf("Skipmap returned %d entries, want 4 (one per shard)", len(tables))
	}
	for _, st := range tables {
		if st.Shards != 4 || st.Shard < 1 || st.Shard > 4 {
			t.Fatalf("bad shard stamp: shard=%d shards=%d", st.Shard, st.Shards)
		}
	}
}

// TestShardedSaveRoundTrip: SaveTable on a sharded DB writes a merged
// snapshot that an unsharded DB can load, and WriteCSV exports all rows.
func TestShardedSaveRoundTrip(t *testing.T) {
	db, tab := shardedDB(t, "range")
	defer db.Close()
	var buf bytes.Buffer
	if err := db.SaveTable("sales", &buf); err != nil {
		t.Fatal(err)
	}
	db2 := Open(Options{})
	tab2, err := db2.LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.NumRows() != 400 {
		t.Fatalf("loaded %d rows, want 400", tab2.NumRows())
	}
	var csv bytes.Buffer
	if err := tab.WriteCSV(&csv, "NULL"); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 401 { // header + 400 rows
		t.Fatalf("CSV has %d lines, want 401", lines)
	}
}

// TestShardedDurability: a sharded durable DB logs per-shard WAL records
// and a fresh sharded DB recovers them into the same placement.
func TestShardedDurability(t *testing.T) {
	dir := t.TempDir()
	open := func() (*DB, *Table) {
		db := Open(Options{Policy: Adaptive, Shards: 4, ShardKey: "id",
			Durability: Durability{Dir: dir}})
		tab, err := db.CreateTable("sales",
			Col("id", Int64), Col("price", Float64), Col("city", String))
		if err != nil {
			t.Fatal(err)
		}
		return db, tab
	}
	db, tab := open()
	if _, err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, 0, 200)
	for i := 0; i < 200; i++ {
		rows = append(rows, []Value{IntValue(int64(i)), FloatValue(float64(i)), StringValue("x")})
	}
	if err := tab.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, tab2 := open()
	stats, err := db2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if stats.Rows != 200 {
		t.Fatalf("recovered %d rows, want 200", stats.Rows)
	}
	if tab2.NumRows() != 200 {
		t.Fatalf("NumRows after recovery = %d, want 200", tab2.NumRows())
	}
	res, err := db2.Exec("SELECT COUNT(*) FROM sales WHERE id BETWEEN 0 AND 49")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggs[0].Equal(IntValue(50)) {
		t.Fatalf("post-recovery count = %v, want 50", res.Aggs[0])
	}
}

// TestShardedOptionsValidation: bad shard configuration surfaces at
// CreateTable, not at first query.
func TestShardedOptionsValidation(t *testing.T) {
	db := Open(Options{Shards: 4, ShardKey: "city"})
	if _, err := db.CreateTable("t", Col("id", Int64), Col("city", String)); err == nil {
		t.Error("string shard key accepted")
	}
	db2 := Open(Options{Shards: 4, ShardKey: "id", ShardBy: "mod"})
	if _, err := db2.CreateTable("t", Col("id", Int64)); err == nil {
		t.Error("unknown shard mode accepted")
	}
}
