// Package adskip is an embeddable main-memory column store with adaptive
// data skipping, reproducing "Adaptive Data Skipping in Main-Memory
// Systems" (Qin & Idreos, SIGMOD 2016).
//
// The store executes scan-heavy SQL over in-memory columns. Lightweight
// zone metadata (min/max per row range) lets scans skip data; the adaptive
// policy reshapes that metadata from per-query feedback — splitting zones
// where finer bounds would prune, merging zones whose metadata never
// helps, and disabling skipping entirely on columns where probing cannot
// pay for itself.
//
// Quickstart:
//
//	db := adskip.Open(adskip.Options{Policy: adskip.Adaptive})
//	t, _ := db.CreateTable("sales",
//		adskip.Col("id", adskip.Int64),
//		adskip.Col("price", adskip.Float64),
//		adskip.Col("city", adskip.String))
//	t.Append(1, 9.99, "oslo")
//	t.EnableSkipping()
//	res, _ := db.Exec("SELECT COUNT(*) FROM sales WHERE price < 10")
package adskip

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adskip/internal/adaptive"
	"adskip/internal/core"
	"adskip/internal/engine"
	"adskip/internal/health"
	"adskip/internal/obs"
	"adskip/internal/shard"
	"adskip/internal/sql"
	"adskip/internal/stats"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/telemetry"
	"adskip/internal/wal"
)

// Type is a column's logical type.
type Type = storage.Type

// Column types.
const (
	Int64   = storage.Int64
	Float64 = storage.Float64
	String  = storage.String
)

// Value is a dynamically typed cell value.
type Value = storage.Value

// Value constructors, re-exported for result inspection and typed ingest.
var (
	IntValue    = storage.IntValue
	FloatValue  = storage.FloatValue
	StringValue = storage.StringValue
	NullValue   = storage.NullValue
)

// Policy selects the data-skipping policy.
type Policy = engine.Policy

// Skipping policies.
const (
	// None scans every row (baseline).
	None = engine.PolicyNone
	// Static uses classic fixed-granularity zonemaps.
	Static = engine.PolicyStatic
	// Adaptive uses adaptive zonemaps — the paper's contribution.
	Adaptive = engine.PolicyAdaptive
	// Imprint uses static column imprints (bin-occurrence masks per
	// zone): a second skipping structure under the same framework,
	// effective on multi-modal zones where min/max hulls cannot prune.
	Imprint = engine.PolicyImprint
)

// AdaptiveConfig tunes the adaptive policy; the zero value uses defaults.
type AdaptiveConfig = adaptive.Config

// SkipperInfo describes a column's skipping metadata.
type SkipperInfo = core.Metadata

// Result is a query result: a count, aggregate values, and/or projected
// rows, plus execution statistics (rows scanned/skipped/covered, zones
// probed) and a per-query trace (Result.Trace).
type Result = engine.Result

// Metrics is the engine-wide metrics registry: atomic counters, gauges,
// and fixed-bucket histograms, exposable in Prometheus text format
// (WritePrometheus) or JSON (WriteJSON). One registry is shared by every
// table of a DB; instrumentation is always on.
type Metrics = obs.Registry

// QueryTrace is the per-query execution trace attached to Result.Trace:
// phase timings (plan → metadata probe → scan → feedback), the
// hierarchical span tree (QueryTrace.Root), and the skipping decision each
// predicate column's skipper made.
type QueryTrace = obs.QueryTrace

// SkipmapTable is one table's skipping-effectiveness snapshot: per-column
// structure state, quarantine status, cumulative prune counters, and
// per-zone hit/miss detail for introspectable skippers. Served by the
// telemetry server's /skipmap endpoint and DB.Skipmap.
type SkipmapTable = obs.SkipmapTable

// AdaptationEvent is one structural or arbitration change to a column's
// skipping metadata (zone split/merge, skipping disabled/enabled, tail
// fold, metadata built/loaded, quarantine/rebuild).
type AdaptationEvent = obs.Event

// AdaptationRecord is one adaptation-ledger entry: a zone-lifecycle
// event with full provenance — cause, the query template whose feedback
// triggered it, the affected row window, and the before/after zone
// counts and value-bound hulls. Retained in a bounded ring; see
// DB.Adaptation and the telemetry /adaptation endpoint.
type AdaptationRecord = obs.LedgerRecord

// AdaptationROI is one column's adaptation return-on-investment row:
// rows/bytes skipped (credit) against zone probes and structural
// maintenance (debit), plus dead-zone accounting.
type AdaptationROI = obs.ColumnROI

// AdaptationSnapshot is the full adaptation-ledger view returned by
// DB.Adaptation and served by /adaptation: retained records plus
// per-column ROI rows.
type AdaptationSnapshot = obs.AdaptationSnapshot

// HistorySample is one point on the adaptation timeline sampled while
// telemetry runs: cumulative query/row totals, the engine-wide skip
// ratio, estimated latency quantiles, and per-column skipping state.
// Served by the telemetry server's /history endpoint and DB.History.
type HistorySample = obs.HistorySample

// HistoryColumn is one column's skipping state inside a HistorySample.
type HistoryColumn = obs.HistoryColumn

// Objective is one declarative service-level objective evaluated against
// the adaptation timeline (e.g. "p95 ≤ 5ms", "skip rate ≥ 60%"). Set
// Options.Objectives to enable SLO tracking; see the health package for
// signal semantics.
type Objective = health.Objective

// HealthSignal names the measured series an Objective targets.
type HealthSignal = health.Signal

// The supported objective signals.
const (
	SignalLatencyP50 = health.SignalLatencyP50
	SignalLatencyP95 = health.SignalLatencyP95
	SignalErrorRate  = health.SignalErrorRate
	SignalSkipRate   = health.SignalSkipRate
	SignalQueueDepth = health.SignalQueueDepth
	SignalWALLag     = health.SignalWALLag
	// SignalSkipRegression alerts when any query template's skip rate
	// decays against its own learned baseline. Shed-exempt: it reports
	// degraded pruning quality, never overload, so DB.ShedStatus ignores
	// it. Requires workload stats (Options.StatsMaxTemplates >= 0).
	SignalSkipRegression = health.SignalSkipRegression
)

// RecoveryStats summarizes one WAL replay pass, as returned by DB.Recover.
type RecoveryStats = wal.RecoveryStats

// WALStatus is a point-in-time view of the write-ahead log.
type WALStatus = wal.Status

// HealthConfig tunes SLO evaluation: the short/mid/long burn-rate
// windows, burn thresholds, and hysteresis. The zero value uses the
// SRE-style defaults (10s/1m/5m windows, 14.4×/6× burns).
type HealthConfig = health.Config

// HealthSeverity is an objective's (or the DB's) alert state.
type HealthSeverity = health.Severity

// The alert states.
const (
	HealthOK       = health.SevOK
	HealthWarning  = health.SevWarning
	HealthCritical = health.SevCritical
)

// HealthSnapshot is the full SLO picture returned by DB.Health and
// served (with readiness semantics) by the telemetry /health endpoint.
type HealthSnapshot = health.Snapshot

// HealthAlerts holds the firing objectives and the bounded alert
// transition history, as returned by DB.Alerts and served by /alerts.
type HealthAlerts = health.AlertsSnapshot

// Limits bounds each query's resource consumption (rows scanned, result
// rows, wall-clock time). The zero value imposes no limits; enforcement
// happens at cooperative checkpoints, so overshoot is bounded by one
// checkpoint interval (65536 rows).
type Limits = engine.Limits

// WorkloadSnapshot is the point-in-time workload-analytics view returned
// by DB.Workload and served by the telemetry /workload endpoint: per-
// template call counts, latency quantiles, row/zone/byte totals, and
// zone-touch sketches.
type WorkloadSnapshot = stats.WorkloadSnapshot

// TemplateStats is one query template's aggregate inside a
// WorkloadSnapshot.
type TemplateStats = stats.TemplateSnapshot

// Workload sort orders accepted by DB.Workload.
const (
	SortTime  = stats.SortTime
	SortCalls = stats.SortCalls
	SortBytes = stats.SortBytes
)

// Resilience errors, re-exported for errors.Is checks on query results.
var (
	// ErrCanceled reports that a query's context was canceled or its
	// deadline expired mid-execution.
	ErrCanceled = engine.ErrCanceled
	// ErrBudget reports that a query exceeded one of its resource limits.
	ErrBudget = engine.ErrBudget
)

// Options configures a DB.
type Options struct {
	// Policy applies to columns on which EnableSkipping is called.
	Policy Policy
	// StaticZoneSize is the rows-per-zone for the Static policy
	// (default 65536).
	StaticZoneSize int
	// Adaptive tunes the Adaptive policy.
	Adaptive AdaptiveConfig
	// Parallelism sets the number of goroutines for count scans
	// (default 1; results are identical at any setting).
	Parallelism int
	// Limits bounds every query's resource consumption (zero = none).
	Limits Limits
	// MaxConcurrentQueries bounds in-flight queries across all tables of
	// this DB (0 = unbounded). Excess queries wait for admission and
	// honor their context while waiting.
	MaxConcurrentQueries int
	// TraceRingSize is how many recent query traces the DB retains for
	// DB.Traces and the telemetry server's /traces endpoint (default 256).
	TraceRingSize int
	// SlowQueryThreshold flags queries whose wall clock meets or exceeds
	// it: their traces are marked slow and copied to the slow-query log
	// (DB.SlowTraces, /slow). Zero disables the slow-query log.
	SlowQueryThreshold time.Duration
	// Logger receives structured log events from every table's engine:
	// slow queries at warn, quarantines at error, adaptation milestones
	// at info, per-zone structural churn at debug. Nil disables logging
	// (the hot path then pays one nil check).
	Logger *slog.Logger
	// HistoryInterval is the adaptation-timeline sampling period while
	// telemetry runs (default 1s). The sampler starts with StartTelemetry
	// and stops with Close.
	HistoryInterval time.Duration
	// HistoryCapacity is how many timeline samples the DB retains
	// (default 1024 — about 17 minutes at the default interval).
	HistoryCapacity int
	// Objectives declares the DB's service-level objectives. When any are
	// set, the adaptation-timeline sampler starts at Open (not just at
	// StartTelemetry) and a health monitor evaluates every objective each
	// tick; DB.Health, DB.Alerts, and the telemetry /health and /alerts
	// endpoints report the result. Objectives with an unknown signal
	// panic at Open — a misdeclared SLO is a programming error the
	// process should not limp past. Remember to Close a DB with
	// objectives: the sampler owns a goroutine.
	Objectives []Objective
	// Health tunes objective evaluation (windows, burn thresholds,
	// hysteresis). Ignored unless Objectives is non-empty.
	Health HealthConfig
	// Durability, when Dir is set, arms a write-ahead log: appends and
	// updates are group-committed to disk before they are acknowledged,
	// and DB.Recover replays them after a crash. A DB opened with
	// durability starts in recovering state — load the deterministic base
	// data (CreateTable/LoadTable + bulk load), then call Recover before
	// serving mutations.
	Durability Durability
	// StatsMaxTemplates bounds the workload-analytics table: how many
	// distinct query templates (literal-stripped fingerprints) the DB
	// tracks before LRU eviction. 0 means the default (256); negative
	// disables workload analytics entirely — SQL queries then skip
	// fingerprint attribution and the /workload endpoint reports an
	// empty table.
	StatsMaxTemplates int
	// StatsZoneSketch bounds each template's zone-touch sketch (distinct
	// zone IDs recorded across all columns; 0 = default 512, negative
	// disables the sketch). See DESIGN §12.
	StatsZoneSketch int
	// Shards partitions every table created on this DB into per-core
	// shards behind a scatter-gather executor: queries shard-prune by
	// observed key bounds before any zone metadata is consulted, fan out
	// to the survivors in parallel, and merge. 0 or 1 means unsharded
	// (single engine). See DESIGN §13.
	Shards int
	// ShardKey names the shard key column (BIGINT or DOUBLE). Empty picks
	// each table's first numeric column. Ignored unless Shards > 1.
	ShardKey string
	// ShardBy selects the routing mode: "range" (default — learned
	// equi-depth bounds, range predicates on the key prune shards) or
	// "hash" (uniform placement, little shard pruning). Ignored unless
	// Shards > 1.
	ShardBy string
}

// Durability configures the write-ahead log (see Options.Durability).
type Durability struct {
	// Dir is the WAL segment directory; empty disables durability.
	Dir string
	// GroupWindow bounds how long a commit may linger waiting to share an
	// fsync with concurrent writers (default 2ms). Larger windows
	// amortize fsync across more writers at the cost of commit latency.
	GroupWindow time.Duration
	// SegmentBytes is the segment rotation threshold (default 64 MiB).
	SegmentBytes int64
	// FlushBytes flushes a pending batch early once it exceeds this many
	// bytes (default 1 MiB).
	FlushBytes int64
	// DisableFsync keeps the logging and group-commit machinery but skips
	// fsync — for benchmarks isolating fsync cost. No crash durability.
	DisableFsync bool
}

// ColumnDef defines one column of a new table.
type ColumnDef struct {
	Name string
	Type Type
}

// Col is a convenience constructor for ColumnDef.
func Col(name string, typ Type) ColumnDef { return ColumnDef{Name: name, Type: typ} }

// executor is the per-table query backend: a plain *engine.Engine, or a
// *shard.Manager fanning out to per-shard engines. Everything the facade
// drives goes through this surface so sharded and unsharded tables are
// interchangeable past CreateTable.
type executor interface {
	sql.Executor
	NumRows() int
	AppendRow(vals ...storage.Value) error
	AppendRows(rows [][]storage.Value) error
	Update(col string, row int, v storage.Value) error
	EnableSkipping(cols ...string) error
	SkipperMetadata() map[string]core.Metadata
	Quarantined() map[string]error
	RebuildSkipping(cols ...string) error
	VerifySkipping(cols ...string) error
	SaveSkipper(col string, w io.Writer) error
	LoadSkipper(col string, r io.Reader) error
	SetWAL(l *wal.Log)
	ReplayRecord(rec *wal.Record) error
	FillHistory(s *obs.HistorySample)
	AccumulateLatency(dst []int64)
}

// DB is a catalog of tables sharing one skipping configuration and one
// observability plane (metrics registry, adaptation-event log, trace
// rings, and an optional embedded telemetry server).
type DB struct {
	opts      Options
	reg       *obs.Registry
	events    *obs.EventLog
	ledger    *obs.Ledger
	admission *engine.Admission
	traces    *obs.TraceRing
	slow      *obs.TraceRing

	// mu guards the catalog and the telemetry handle: the telemetry
	// server's Skipmap/trace closures read engines concurrently with
	// CreateTable/LoadTable/LoadCSV.
	mu      sync.RWMutex
	engines map[string]executor
	telem   *telemetry.Server
	sampler *obs.Sampler

	// stats is the catalog-wide workload analytics table (nil when
	// Options.StatsMaxTemplates is negative). Set once at Open.
	stats *stats.Table

	// monitor evaluates Options.Objectives on each sampler tick. Set once
	// at Open (immutable afterwards), nil when no objectives are declared.
	monitor     *health.Monitor
	unsubHealth func()

	// wal is the armed write-ahead log (nil until Recover completes on a
	// DB with Options.Durability). Guarded by mu; recovering is read on
	// request paths, hence atomic. recoverMu serializes whole Recover
	// calls, so two concurrent callers cannot both open (and double-
	// replay) the same directory.
	wal        *wal.Log
	recoverMu  sync.Mutex
	recovering atomic.Bool
}

// DB-level errors.
var (
	ErrNoSuchTable = errors.New("adskip: no such table")
	ErrTableExists = errors.New("adskip: table already exists")
)

// Open creates an empty database. When Options.Objectives is non-empty
// the adaptation-timeline sampler and the SLO monitor start immediately
// (headless health: no telemetry server required); Close stops them.
func Open(opts Options) *DB {
	db := &DB{
		opts:      opts,
		engines:   make(map[string]executor),
		reg:       obs.NewRegistry(),
		events:    obs.NewEventLog(0),
		ledger:    obs.NewLedger(0),
		admission: engine.NewAdmission(opts.MaxConcurrentQueries),
		traces:    obs.NewTraceRing(opts.TraceRingSize),
		slow:      obs.NewTraceRing(opts.TraceRingSize),
	}
	if opts.StatsMaxTemplates >= 0 {
		db.stats = stats.New(stats.Options{
			MaxTemplates:   opts.StatsMaxTemplates,
			ZoneSketchSize: opts.StatsZoneSketch,
			Registry:       db.reg,
		})
	}
	// A durable DB starts in recovering state: mutations are not durable
	// (and servers should refuse them) until Recover has replayed the log
	// and armed the engines.
	db.recovering.Store(opts.Durability.Dir != "")
	if len(opts.Objectives) > 0 {
		smp := obs.NewSampler(opts.HistoryInterval, opts.HistoryCapacity, db.fillHistory)
		mon, err := health.New(opts.Objectives, smp.Interval(), opts.Health, db.reg, opts.Logger)
		if err != nil {
			smp.Stop()
			panic("adskip: " + err.Error())
		}
		db.monitor = mon
		db.unsubHealth = smp.Subscribe(mon.OnSample)
		db.mu.Lock()
		db.sampler = smp
		db.mu.Unlock()
	}
	return db
}

// engineOptions maps DB options onto per-table engine options. All tables
// share the DB's trace rings, so /traces and DB.Traces interleave queries
// across the whole catalog in arrival order.
func (db *DB) engineOptions() engine.Options {
	return engine.Options{
		Policy:             db.opts.Policy,
		StaticZoneSize:     db.opts.StaticZoneSize,
		Adaptive:           db.opts.Adaptive,
		Parallelism:        db.opts.Parallelism,
		Metrics:            db.reg,
		Events:             db.events,
		Ledger:             db.ledger,
		Limits:             db.opts.Limits,
		Admission:          db.admission,
		Traces:             db.traces,
		SlowTraces:         db.slow,
		SlowQueryThreshold: db.opts.SlowQueryThreshold,
		Logger:             db.opts.Logger,
		Stats:              db.stats,
	}
}

// Traces returns the most recent query traces across all tables,
// oldest-first (bounded ring; see Options.TraceRingSize).
func (db *DB) Traces() []*QueryTrace { return db.traces.Snapshot() }

// SlowTraces returns the retained slow-query traces, oldest-first. Empty
// unless Options.SlowQueryThreshold is set.
func (db *DB) SlowTraces() []*QueryTrace { return db.slow.Snapshot() }

// Workload returns the per-template workload statistics: the top-k query
// templates under the given sort order (adskip.SortTime, SortCalls, or
// SortBytes; "" sorts by total time, k <= 0 returns every template).
// Empty when Options.StatsMaxTemplates is negative.
func (db *DB) Workload(sortBy string, k int) WorkloadSnapshot {
	return db.stats.Snapshot(sortBy, k)
}

// Skipmap returns a skipping-effectiveness snapshot for every table,
// sorted by table name. maxZones caps the per-zone detail per column
// (<= 0 returns every zone); counters are cumulative since each skipper
// was built.
func (db *DB) Skipmap(maxZones int) []SkipmapTable {
	db.mu.RLock()
	engines := make([]executor, 0, len(db.engines))
	for _, e := range db.engines {
		engines = append(engines, e)
	}
	db.mu.RUnlock()
	out := make([]SkipmapTable, 0, len(engines))
	for _, e := range engines {
		switch x := e.(type) {
		case *shard.Manager:
			out = append(out, x.Skipmaps(maxZones)...)
		case *engine.Engine:
			out = append(out, x.Skipmap(maxZones))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// Adaptation returns the adaptation-ledger snapshot: the retained
// zone-lifecycle records (oldest-first, with drop accounting) and one
// ROI row per column per shard across the whole catalog. maxDead caps
// each column's dead-zone detail (<= 0 omits the detail, keeping the
// counts).
func (db *DB) Adaptation(maxDead int) AdaptationSnapshot {
	db.mu.RLock()
	engines := make([]executor, 0, len(db.engines))
	for _, e := range db.engines {
		engines = append(engines, e)
	}
	db.mu.RUnlock()
	snap := AdaptationSnapshot{
		Total:   db.ledger.Seq(),
		Dropped: db.ledger.Dropped(),
		Events:  db.ledger.Records(),
		ROI:     []AdaptationROI{},
	}
	for _, e := range engines {
		switch x := e.(type) {
		case *shard.Manager:
			snap.ROI = append(snap.ROI, x.AdaptationROI(maxDead)...)
		case *engine.Engine:
			snap.ROI = append(snap.ROI, x.AdaptationROI(maxDead)...)
		}
	}
	sort.Slice(snap.ROI, func(i, j int) bool {
		a, b := snap.ROI[i], snap.ROI[j]
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Shard < b.Shard
	})
	return snap
}

// StartTelemetry starts the embedded telemetry HTTP server on addr
// ("127.0.0.1:0" when empty — an ephemeral localhost port) and returns
// the server's base URL. The server exposes /metrics (Prometheus),
// /metrics.json, /traces, /slow, /skipmap, /events, /runtime, /history,
// /dash, and /debug/pprof/*; it runs until DB.Close. The adaptation-
// timeline sampler (behind /history and DB.History) starts alongside
// and also stops at Close. Starting twice is an error.
func (db *DB) StartTelemetry(addr string) (string, error) {
	// The sampler (unless Open already started one for SLO tracking) is
	// created before the catalog lock is taken: it takes its first sample
	// synchronously, and fillHistory needs the read lock. Stopping it (on
	// a lost start race) must also happen outside the lock for the same
	// reason.
	db.mu.RLock()
	smp := db.sampler
	db.mu.RUnlock()
	created := smp == nil
	if created {
		smp = obs.NewSampler(db.opts.HistoryInterval, db.opts.HistoryCapacity, db.fillHistory)
	}
	src := telemetry.Source{
		Registry:   db.reg,
		Traces:     db.traces,
		SlowTraces: db.slow,
		Events:     db.events.Events,
		Skipmap:    db.Skipmap,
		History:    smp,
	}
	if db.monitor != nil {
		src.Health = func() (health.Snapshot, bool) { return db.monitor.Snapshot(), true }
		src.Alerts = db.monitor.Alerts
	}
	src.Workload = db.stats
	src.Adaptation = db.Adaptation
	db.mu.Lock()
	if db.telem != nil {
		db.mu.Unlock()
		if created {
			smp.Stop()
		}
		return "", errors.New("adskip: telemetry server already running")
	}
	db.sampler = smp
	srv, err := telemetry.Start(telemetry.Options{Addr: addr}, src)
	if err != nil {
		if created {
			db.sampler = nil
		}
		db.mu.Unlock()
		if created {
			smp.Stop()
		}
		return "", err
	}
	db.telem = srv
	db.mu.Unlock()
	return srv.URL(), nil
}

// Health reports the DB's current SLO evaluation. ok is false when no
// Objectives were declared at Open.
func (db *DB) Health() (HealthSnapshot, bool) {
	if db.monitor == nil {
		return HealthSnapshot{}, false
	}
	return db.monitor.Snapshot(), true
}

// HealthStatus returns the overall alert state (HealthOK when no
// objectives are declared). Lock-free: safe to call per request.
func (db *DB) HealthStatus() HealthSeverity {
	if db.monitor == nil {
		return HealthOK
	}
	return db.monitor.Status()
}

// ShedStatus returns the load-shedding severity: the overall alert
// state restricted to shed-eligible signals. Shed-exempt signals (skip
// regression — a pruning-quality report, not overload) can turn
// HealthStatus critical without ever raising ShedStatus, so a
// refuse-on-critical server gate should read this one. Lock-free.
func (db *DB) ShedStatus() HealthSeverity {
	if db.monitor == nil {
		return HealthOK
	}
	return db.monitor.ShedStatus()
}

// Alerts returns the firing objectives and retained alert transitions
// (zero value when no objectives are declared).
func (db *DB) Alerts() HealthAlerts {
	if db.monitor == nil {
		return HealthAlerts{Active: []health.ObjectiveStatus{}, History: []health.Transition{}}
	}
	return db.monitor.Alerts()
}

// History returns the retained adaptation-timeline samples oldest-first.
// Empty until the sampler starts — at Open when Objectives are declared,
// otherwise at StartTelemetry.
func (db *DB) History() []HistorySample {
	db.mu.RLock()
	s := db.sampler
	db.mu.RUnlock()
	if s == nil {
		return nil
	}
	return s.Snapshot()
}

// fillHistory is the sampler's fill callback: it aggregates every
// engine's cumulative totals and per-column skipping state into one
// sample and estimates latency quantiles from the engines' merged
// latency histograms. It runs on the sampler goroutine; the only
// allocations are the catalog-lock-bounded engine list and, on column
// growth, the sample's column slice.
func (db *DB) fillHistory(s *HistorySample) {
	db.mu.RLock()
	engines := make([]executor, 0, len(db.engines))
	for _, e := range db.engines {
		engines = append(engines, e)
	}
	db.mu.RUnlock()

	// The merged latency histogram lives on the sample itself (slot slice
	// reused by the ring), so the health monitor can window per-tick
	// bucket deltas without another copy.
	bounds := obs.LatencyBuckets()
	buckets := s.LatencyBuckets[:0]
	for i := 0; i < len(bounds)+1; i++ {
		buckets = append(buckets, 0)
	}
	for _, e := range engines {
		e.FillHistory(s)
		e.AccumulateLatency(buckets)
	}
	s.LatencyBuckets = buckets
	s.QueueDepth = db.admission.Waiting()
	if denom := s.RowsSkipped + s.RowsScanned; denom > 0 {
		s.SkipRatio = float64(s.RowsSkipped) / float64(denom)
	}
	s.LatencyP50 = obs.QuantileFromBuckets(bounds, buckets, 0.50)
	s.LatencyP95 = obs.QuantileFromBuckets(bounds, buckets, 0.95)
	s.AdaptEvents = int64(db.events.Seq())
	// Worst per-template skip-rate decay vs its learned baseline — the
	// skip_regression health signal (0 without workload stats).
	s.SkipRegression = db.stats.RegressionGap()
	db.mu.RLock()
	l := db.wal
	db.mu.RUnlock()
	if l != nil {
		s.WALLagSeconds = l.Lag().Seconds()
	}
}

// TelemetryAddr returns the telemetry server's bound listen address, or
// "" when no server is running.
func (db *DB) TelemetryAddr() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.telem == nil {
		return ""
	}
	return db.telem.Addr()
}

// Close releases the DB's background resources: the telemetry server (if
// started) shuts down along with its runtime collector goroutine, and the
// adaptation-timeline sampler is stopped and joined. Tables stay readable
// after Close; only telemetry stops. Safe to call on a DB that never
// started telemetry.
func (db *DB) Close() error {
	db.mu.Lock()
	srv := db.telem
	smp := db.sampler
	l := db.wal
	db.telem = nil
	db.sampler = nil
	db.wal = nil
	db.mu.Unlock()
	if db.unsubHealth != nil {
		db.unsubHealth()
	}
	if smp != nil {
		smp.Stop()
	}
	var err error
	if l != nil {
		// Flush and fsync the log before the process can exit: the drain
		// half of SIGTERM handling.
		err = l.Close()
	}
	if srv != nil {
		err = errors.Join(err, srv.Close())
	}
	return err
}

// Metrics returns the database's metrics registry, shared by all tables.
// Use WritePrometheus or WriteJSON on it for exposition.
func (db *DB) Metrics() *Metrics { return db.reg }

// AdaptationEvents returns a chronological copy of the retained
// adaptation events across all tables (bounded ring; oldest drop first).
func (db *DB) AdaptationEvents() []AdaptationEvent { return db.events.Events() }

// ExplainAnalyze parses and executes a SQL SELECT, returning the rendered
// EXPLAIN ANALYZE plan (phase timings, per-predicate estimated vs actual
// pruning) alongside the executed result. Equivalent to Exec with an
// "EXPLAIN ANALYZE" prefix, but returns the lines directly.
func (db *DB) ExplainAnalyze(query string) ([]string, *Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	e, ok := db.lookup(stmt.Table)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNoSuchTable, stmt.Table)
	}
	q, err := sql.Plan(stmt, e.Table())
	if err != nil {
		return nil, nil, err
	}
	ctx := context.Background()
	if db.stats != nil {
		ctx = obs.WithTemplate(ctx, sql.Fingerprint(stmt))
	}
	return e.ExplainAnalyzeContext(ctx, q)
}

// lookup resolves a table name to its executor under the catalog lock.
func (db *DB) lookup(name string) (executor, bool) {
	db.mu.RLock()
	e, ok := db.engines[name]
	db.mu.RUnlock()
	return e, ok
}

// register adds an engine to the catalog; it fails if the name is taken.
// Tables created after Recover are armed with the WAL immediately.
func (db *DB) register(name string, e executor) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.engines[name]; dup {
		return fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	db.engines[name] = e
	if db.wal != nil {
		e.SetWAL(db.wal)
	}
	return nil
}

// Recovering reports whether the DB is a durable store that has not yet
// completed Recover. Servers refuse mutations (and queries, whose answers
// would predate the replayed tail) while recovering. Lock-free.
func (db *DB) Recovering() bool { return db.recovering.Load() }

// Recover replays the write-ahead log at Options.Durability.Dir into the
// catalog's tables, verifies every table's skipping metadata against the
// recovered contents, then arms the WAL so subsequent appends and updates
// are durable. Call it exactly once, after the deterministic base data is
// loaded (replay routes records by table name and errors on unknown
// tables) and before serving mutations. On a fresh directory it succeeds
// with zero records — Recover is how a durable DB arms its WAL, crash or
// no crash.
func (db *DB) Recover() (RecoveryStats, error) {
	if db.opts.Durability.Dir == "" {
		return RecoveryStats{}, errors.New("adskip: Options.Durability.Dir not set")
	}
	// Hold recoverMu across open+verify+arm: a second concurrent Recover
	// must observe the first one's armed WAL, not race past the check and
	// replay the directory twice.
	db.recoverMu.Lock()
	defer db.recoverMu.Unlock()
	db.mu.RLock()
	armed := db.wal != nil
	db.mu.RUnlock()
	if armed {
		return RecoveryStats{}, errors.New("adskip: Recover already completed")
	}
	d := db.opts.Durability
	l, stats, err := wal.Open(wal.Options{
		Dir:          d.Dir,
		GroupWindow:  d.GroupWindow,
		SegmentBytes: d.SegmentBytes,
		FlushBytes:   d.FlushBytes,
		NoSync:       d.DisableFsync,
		Metrics:      db.reg,
		Logger:       db.opts.Logger,
	}, func(rec *wal.Record) error {
		e, ok := db.lookup(rec.Table)
		if !ok {
			return fmt.Errorf("%w: %q (create tables before Recover)", ErrNoSuchTable, rec.Table)
		}
		return e.ReplayRecord(rec)
	})
	if err != nil {
		return stats, err
	}
	// The replayed state must satisfy every skipping invariant before the
	// store accepts new writes on top of it.
	db.mu.RLock()
	engines := make([]executor, 0, len(db.engines))
	for _, e := range db.engines {
		engines = append(engines, e)
	}
	db.mu.RUnlock()
	var verr error
	for _, e := range engines {
		if err := e.VerifySkipping(); err != nil {
			verr = errors.Join(verr, fmt.Errorf("table %q: %w", e.Table().Name(), err))
		}
	}
	if verr != nil {
		l.Close()
		return stats, fmt.Errorf("adskip: recovery verification failed: %w", verr)
	}
	db.mu.Lock()
	db.wal = l
	for _, e := range db.engines {
		e.SetWAL(l)
	}
	db.mu.Unlock()
	db.recovering.Store(false)
	return stats, nil
}

// WALStatus reports the write-ahead log's current state; ok is false
// until Recover has armed it.
func (db *DB) WALStatus() (WALStatus, bool) {
	db.mu.RLock()
	l := db.wal
	db.mu.RUnlock()
	if l == nil {
		return WALStatus{}, false
	}
	return l.Status(), true
}

// SyncWAL forces everything logged so far to disk and waits — the drain
// path for graceful shutdown. No-op without an armed WAL.
func (db *DB) SyncWAL() error {
	db.mu.RLock()
	l := db.wal
	db.mu.RUnlock()
	if l == nil {
		return nil
	}
	return l.Sync()
}

// CompactWAL recycles WAL segments whose every record has LSN <=
// throughLSN, asserting those records are captured elsewhere (e.g. via
// SaveTable). LSNs are stable across restarts, so a horizon recorded
// alongside a snapshot stays valid after a crash and recovery. Returns
// how many segments were recycled.
func (db *DB) CompactWAL(throughLSN uint64) (int, error) {
	db.mu.RLock()
	l := db.wal
	db.mu.RUnlock()
	if l == nil {
		return 0, errors.New("adskip: no WAL armed")
	}
	return l.Compact(throughLSN)
}

// CreateTable creates a table with the given columns.
func (db *DB) CreateTable(name string, cols ...ColumnDef) (*Table, error) {
	if _, dup := db.lookup(name); dup {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	schema := make(table.Schema, len(cols))
	for i, c := range cols {
		schema[i] = table.ColumnSpec{Name: c.Name, Type: c.Type}
	}
	tbl, err := table.New(name, schema)
	if err != nil {
		return nil, err
	}
	e, err := db.newExecutor(tbl)
	if err != nil {
		return nil, err
	}
	if err := db.register(name, e); err != nil {
		return nil, err
	}
	return &Table{eng: e}, nil
}

// newExecutor builds the execution stack for a table: a single engine,
// or — when Options.Shards > 1 — a shard manager that partitions the
// table's rows across per-core engines and scatter-gathers queries.
func (db *DB) newExecutor(tbl *table.Table) (executor, error) {
	if db.opts.Shards <= 1 {
		return engine.New(tbl, db.engineOptions()), nil
	}
	mode, err := shard.ParseMode(db.opts.ShardBy)
	if err != nil {
		return nil, fmt.Errorf("adskip: %w", err)
	}
	m, err := shard.NewFromTable(tbl, shard.Options{
		Shards: db.opts.Shards,
		Key:    db.opts.ShardKey,
		Mode:   mode,
		Engine: db.engineOptions(),
	})
	if err != nil {
		return nil, fmt.Errorf("adskip: %w", err)
	}
	return m, nil
}

// dataTable resolves an executor to a queryable-as-data table: the
// engine's own table, or — for a sharded table — a merged snapshot in
// ascending key order (range mode) for export.
func dataTable(e executor) (*table.Table, error) {
	if m, ok := e.(*shard.Manager); ok {
		return m.Merged()
	}
	return e.Table(), nil
}

// Table returns a handle to an existing table.
func (db *DB) Table(name string) (*Table, error) {
	e, ok := db.lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return &Table{eng: e}, nil
}

// TableNames lists the catalog in lexicographic order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	names := make([]string, 0, len(db.engines))
	for n := range db.engines {
		names = append(names, n)
	}
	db.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Exec parses and executes a SQL SELECT, routing by the FROM table.
// EXPLAIN statements return the plan as rows of a single "plan" column.
func (db *DB) Exec(query string) (*Result, error) {
	return db.ExecContext(context.Background(), query)
}

// ExecContext is Exec under a context: execution checks ctx at cooperative
// checkpoints (at least once per 65536 rows scanned), so cancellation and
// deadlines take effect mid-scan. A canceled query returns an error
// wrapping ErrCanceled.
func (db *DB) ExecContext(ctx context.Context, query string) (*Result, error) {
	t0 := time.Now()
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	parse := time.Since(t0)
	e, ok := db.lookup(stmt.Table)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, stmt.Table)
	}
	res, err := sql.ExecParsedContext(ctx, e, stmt)
	if res != nil && res.Trace != nil && res.Trace.Root != nil {
		res.Trace.Root.AttachFirst(&obs.Span{Name: "parse", Start: t0, Duration: parse})
	}
	return res, err
}

// SaveTable serializes a table snapshot to w (binary, checksummed).
func (db *DB) SaveTable(name string, w io.Writer) error {
	e, ok := db.lookup(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	tbl, err := dataTable(e)
	if err != nil {
		return err
	}
	_, err = tbl.WriteTo(w)
	return err
}

// LoadTable reads a table snapshot from r and registers it in the
// catalog under its stored name.
func (db *DB) LoadTable(r io.Reader) (*Table, error) {
	tbl, err := table.Read(r)
	if err != nil {
		return nil, err
	}
	e, err := db.newExecutor(tbl)
	if err != nil {
		return nil, err
	}
	if err := db.register(tbl.Name(), e); err != nil {
		return nil, err
	}
	return &Table{eng: e}, nil
}

// CSVOptions re-exports the table layer's CSV ingest options.
type CSVOptions = table.CSVOptions

// LoadCSV ingests a CSV stream as a new table, inferring column types
// from a data prefix unless opts.Schema is set.
func (db *DB) LoadCSV(name string, r io.Reader, opts CSVOptions) (*Table, error) {
	if _, dup := db.lookup(name); dup {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	tbl, err := table.ReadCSV(r, name, opts)
	if err != nil {
		return nil, err
	}
	e, err := db.newExecutor(tbl)
	if err != nil {
		return nil, err
	}
	if err := db.register(name, e); err != nil {
		return nil, err
	}
	return &Table{eng: e}, nil
}

// Table is a handle to one table and its execution stack (a single query
// engine, or a shard manager when the DB is sharded).
type Table struct {
	eng executor
}

// WriteCSV writes the table's rows as CSV with a header. NULLs render as
// nullLit. On a sharded table the export is a merged snapshot.
func (t *Table) WriteCSV(w io.Writer, nullLit string) error {
	tbl, err := dataTable(t.eng)
	if err != nil {
		return err
	}
	return tbl.WriteCSV(w, nullLit)
}

// SaveSkipping serializes a column's learned adaptive zonemap so the
// refinement paid for by past queries survives restarts.
func (t *Table) SaveSkipping(col string, w io.Writer) error {
	return t.eng.SaveSkipper(col, w)
}

// LoadSkipping restores a column's adaptive zonemap from a snapshot,
// verifying it against the column's current contents.
func (t *Table) LoadSkipping(col string, r io.Reader) error {
	return t.eng.LoadSkipper(col, r)
}

// Name returns the table name.
func (t *Table) Name() string { return t.eng.Table().Name() }

// NumRows returns the current row count.
func (t *Table) NumRows() int { return t.eng.NumRows() }

// Shards returns the table's shard count: 1 for an unsharded table.
func (t *Table) Shards() int {
	if m, ok := t.eng.(*shard.Manager); ok {
		return m.Shards()
	}
	return 1
}

// Append ingests one row using native Go values: int/int64 for BIGINT,
// float64 for DOUBLE, string for VARCHAR, nil for NULL.
func (t *Table) Append(vals ...interface{}) error {
	tbl := t.eng.Table()
	schema := tbl.Schema()
	if len(vals) != len(schema) {
		return fmt.Errorf("adskip: got %d values, schema has %d columns", len(vals), len(schema))
	}
	converted := make([]Value, len(vals))
	for i, v := range vals {
		cv, err := toValue(v, schema[i].Type)
		if err != nil {
			return fmt.Errorf("column %q: %w", schema[i].Name, err)
		}
		converted[i] = cv
	}
	return t.eng.AppendRow(converted...)
}

// AppendValues ingests one row of typed Values.
func (t *Table) AppendValues(vals ...Value) error { return t.eng.AppendRow(vals...) }

// AppendBatch ingests a batch of typed rows atomically with respect to
// queries. On a durable DB the whole batch is one WAL record and one
// group-commit wait, so batching is the high-throughput ingest path.
func (t *Table) AppendBatch(rows [][]Value) error { return t.eng.AppendRows(rows) }

// Update overwrites one cell in place (BIGINT and DOUBLE columns).
func (t *Table) Update(col string, row int, v interface{}) error {
	tbl := t.eng.Table()
	c, err := tbl.Column(col)
	if err != nil {
		return err
	}
	cv, err := toValue(v, c.Type())
	if err != nil {
		return err
	}
	return t.eng.Update(col, row, cv)
}

// EnableSkipping builds skipping metadata on the named columns (all when
// none given) using the database's policy.
func (t *Table) EnableSkipping(cols ...string) error { return t.eng.EnableSkipping(cols...) }

// SkipperInfo reports per-column metadata state.
func (t *Table) SkipperInfo() map[string]SkipperInfo { return t.eng.SkipperMetadata() }

// Query executes an engine-level query directly (advanced API; most
// callers use DB.Exec with SQL).
func (t *Table) Query(q engine.Query) (*Result, error) {
	return t.eng.QueryContext(context.Background(), q)
}

// QueryContext is Query under a context: cancellation and deadlines take
// effect at cooperative scan checkpoints.
func (t *Table) QueryContext(ctx context.Context, q engine.Query) (*Result, error) {
	return t.eng.QueryContext(ctx, q)
}

// Quarantined reports columns whose skipping metadata was pulled from
// service after a failure (panic or detected corruption), keyed to the
// error that benched each one. Quarantined columns run full scans —
// correct, just slower — until RebuildSkipping, EnableSkipping, or
// LoadSkipping reinstates metadata.
func (t *Table) Quarantined() map[string]error { return t.eng.Quarantined() }

// RebuildSkipping reconstructs skipping metadata from base column data on
// the named columns (all quarantined columns when none are named),
// clearing their quarantine.
func (t *Table) RebuildSkipping(cols ...string) error { return t.eng.RebuildSkipping(cols...) }

// VerifySkipping revalidates skipping metadata against column contents
// (one O(rows) pass per column), quarantining any column that fails.
func (t *Table) VerifySkipping(cols ...string) error { return t.eng.VerifySkipping(cols...) }

// Engine exposes the underlying engine for advanced integration (the
// experiment harness uses it). Returns nil on a sharded table, whose
// rows are spread across per-shard engines — use Executor instead.
func (t *Table) Engine() *engine.Engine {
	e, _ := t.eng.(*engine.Engine)
	return e
}

// Executor exposes the table's execution stack — an *engine.Engine or a
// sharded scatter-gather manager — behind the sql.Executor surface.
func (t *Table) Executor() sql.Executor { return t.eng }

// toValue converts a native Go value to a typed Value for the target
// column type.
func toValue(v interface{}, want Type) (Value, error) {
	if v == nil {
		return NullValue(want), nil
	}
	switch x := v.(type) {
	case Value:
		return x, nil
	case int:
		return coerceInt(int64(x), want)
	case int32:
		return coerceInt(int64(x), want)
	case int64:
		return coerceInt(x, want)
	case float64:
		if want != Float64 {
			return Value{}, fmt.Errorf("adskip: float64 value for %s column", want)
		}
		return FloatValue(x), nil
	case string:
		if want != String {
			return Value{}, fmt.Errorf("adskip: string value for %s column", want)
		}
		return StringValue(x), nil
	default:
		return Value{}, fmt.Errorf("adskip: unsupported Go type %T", v)
	}
}

func coerceInt(x int64, want Type) (Value, error) {
	switch want {
	case Int64:
		return IntValue(x), nil
	case Float64:
		return FloatValue(float64(x)), nil
	default:
		return Value{}, fmt.Errorf("adskip: integer value for %s column", want)
	}
}
