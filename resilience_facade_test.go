package adskip

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"adskip/internal/adaptive"
	"adskip/internal/faultinject"
	"adskip/internal/obs"
	"adskip/internal/table"
)

// metricsDB builds a DB with one adaptive-skipped table big enough to
// grow real zone metadata, and trains it with a short query stream.
func metricsDB(t *testing.T) (*DB, *Table) {
	t.Helper()
	db := Open(Options{
		Policy: Adaptive,
		Adaptive: AdaptiveConfig{
			InitialZoneRows: 64, MinZoneRows: 8, SplitParts: 4,
			Window: 16, MergeSweepEvery: 4,
		},
	})
	tab, err := db.CreateTable("metrics", Col("v", Int64), Col("seq", Int64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		if err := tab.Append(int64(i%512), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.EnableSkipping("v"); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 25; q++ {
		if _, err := db.Exec("SELECT COUNT(*) FROM metrics WHERE v BETWEEN 100 AND 200"); err != nil {
			t.Fatal(err)
		}
	}
	return db, tab
}

// TestLoadTableCorruptionAtomic verifies DB.LoadTable is failure-atomic:
// a truncated or bit-flipped snapshot is rejected with a typed error and
// the catalog — including tables loaded before the bad attempt — is
// untouched and still serves queries.
func TestLoadTableCorruptionAtomic(t *testing.T) {
	db, _ := demoDB(t, Adaptive)
	var buf bytes.Buffer
	if err := db.SaveTable("sales", &buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	fresh := Open(Options{Policy: Static})

	// Bit flip mid-payload: the checksum must catch it.
	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)/2] ^= 0x10
	if _, err := fresh.LoadTable(bytes.NewReader(flipped)); !errors.Is(err, table.ErrChecksum) {
		t.Fatalf("bit flip: err=%v, want ErrChecksum", err)
	}
	if got := fresh.TableNames(); len(got) != 0 {
		t.Fatalf("failed load polluted catalog: %v", got)
	}

	// Truncations at several depths: all rejected, catalog stays clean.
	for _, cut := range []int{0, 2, len(snap) / 3, len(snap) - 1} {
		if _, err := fresh.LoadTable(bytes.NewReader(snap[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if got := fresh.TableNames(); len(got) != 0 {
		t.Fatalf("truncated load polluted catalog: %v", got)
	}

	// Garbage that is not a snapshot at all.
	if _, err := fresh.LoadTable(bytes.NewReader([]byte("not a snapshot at all"))); !errors.Is(err, table.ErrBadMagic) {
		t.Fatalf("garbage: err=%v, want ErrBadMagic", err)
	}

	// The pristine snapshot still loads after all the failed attempts.
	tab, err := fresh.LoadTable(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 5 {
		t.Fatalf("rows=%d", tab.NumRows())
	}
	if _, err := fresh.Exec("SELECT COUNT(*) FROM sales"); err != nil {
		t.Fatal(err)
	}
}

// TestLoadSkippingCorruptionAtomic verifies Table.LoadSkipping is
// failure-atomic: a corrupt zonemap snapshot is rejected with
// ErrBadSnapshot and the previously installed skipper keeps serving.
func TestLoadSkippingCorruptionAtomic(t *testing.T) {
	db, tab := metricsDB(t)
	var buf bytes.Buffer
	if err := tab.SaveSkipping("v", &buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	check := func(label string, data []byte) {
		t.Helper()
		err := tab.LoadSkipping("v", bytes.NewReader(data))
		if !errors.Is(err, adaptive.ErrBadSnapshot) {
			t.Fatalf("%s: err=%v, want ErrBadSnapshot", label, err)
		}
		// Prior metadata survives the failed load.
		info := tab.SkipperInfo()["v"]
		if info.Kind != "adaptive" || info.Zones == 0 {
			t.Fatalf("%s: skipper lost after failed load: %+v", label, info)
		}
		res, qerr := db.Exec("SELECT COUNT(*) FROM metrics WHERE v BETWEEN 100 AND 200")
		if qerr != nil {
			t.Fatalf("%s: %v", label, qerr)
		}
		if !res.Aggs[0].Equal(IntValue(8 * 101)) {
			t.Fatalf("%s: count=%v", label, res.Aggs[0])
		}
	}

	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)/2] ^= 0x08
	check("bit flip", flipped)
	check("truncated", snap[:len(snap)/2])
	check("empty", nil)

	// The pristine snapshot still round-trips.
	if err := tab.LoadSkipping("v", bytes.NewReader(snap)); err != nil {
		t.Fatal(err)
	}
}

func TestExecContextCancellation(t *testing.T) {
	db, _ := metricsDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExecContext(ctx, "SELECT COUNT(*) FROM metrics WHERE v > 10")
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err=%v, want ErrCanceled", err)
	}
	// Same statement succeeds with a live context.
	if _, err := db.ExecContext(context.Background(), "SELECT COUNT(*) FROM metrics WHERE v > 10"); err != nil {
		t.Fatal(err)
	}
}

func TestLimitsThroughFacade(t *testing.T) {
	db := Open(Options{Limits: Limits{MaxRowsScanned: 1000}})
	tab, err := db.CreateTable("t", Col("v", Int64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200_000; i++ {
		if err := tab.Append(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("SELECT COUNT(*) FROM t WHERE v > 5"); !errors.Is(err, ErrBudget) {
		t.Fatalf("err=%v, want ErrBudget", err)
	}
}

// TestQuarantineLifecycleThroughFacade drives metadata corruption with
// fault injection and checks the public surface end to end: queries stay
// correct, Quarantined reports the benched column, the quarantine event
// lands in AdaptationEvents, and RebuildSkipping restores service.
func TestQuarantineLifecycleThroughFacade(t *testing.T) {
	db, tab := metricsDB(t)

	restore := faultinject.Activate(faultinject.New(5).
		Set(faultinject.InvariantFlip, faultinject.Rule{Every: 1, Limit: 1}))
	if _, err := db.Exec("SELECT COUNT(*) FROM metrics WHERE v BETWEEN 50 AND 150"); err != nil {
		restore()
		t.Fatal(err)
	}
	restore()

	// Next queries detect the corruption, quarantine, and stay correct.
	res, err := db.Exec("SELECT COUNT(*) FROM metrics WHERE v BETWEEN 100 AND 200")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggs[0].Equal(IntValue(8 * 101)) {
		t.Fatalf("count=%v", res.Aggs[0])
	}
	q := tab.Quarantined()
	if _, ok := q["v"]; !ok {
		t.Fatalf("quarantined=%v, want column v", q)
	}
	found := false
	for _, ev := range db.AdaptationEvents() {
		if ev.Kind == obs.EventQuarantine && ev.Column == "v" {
			found = true
		}
	}
	if !found {
		t.Fatal("no quarantine event in AdaptationEvents")
	}

	if err := tab.RebuildSkipping(); err != nil {
		t.Fatal(err)
	}
	if len(tab.Quarantined()) != 0 {
		t.Fatal("quarantine not cleared")
	}
	info := tab.SkipperInfo()["v"]
	if info.Kind != "adaptive" || info.Zones == 0 {
		t.Fatalf("skipper not rebuilt: %+v", info)
	}
	res, err = db.Exec("SELECT COUNT(*) FROM metrics WHERE v BETWEEN 100 AND 200")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggs[0].Equal(IntValue(8 * 101)) {
		t.Fatalf("post-rebuild count=%v", res.Aggs[0])
	}
}

func TestMaxConcurrentQueriesSmoke(t *testing.T) {
	db := Open(Options{MaxConcurrentQueries: 1})
	tab, err := db.CreateTable("t", Col("v", Int64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tab.Append(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Sequential queries each acquire and release the single slot.
	for q := 0; q < 10; q++ {
		if _, err := db.Exec("SELECT COUNT(*) FROM t WHERE v >= 0"); err != nil {
			t.Fatal(err)
		}
	}
}
