package adskip

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHealthFacade proves the SLO surface through the facade: a DB opened
// with Objectives evaluates them on the live sampler feed, Health exposes
// every declared objective, HealthStatus stays consistent with it, and
// Close tears the monitor down without leaking the sampler goroutine.
func TestHealthFacade(t *testing.T) {
	before := runtime.NumGoroutine()
	db := seededDB(t, Options{
		Policy:          Adaptive,
		HistoryInterval: 2 * time.Millisecond,
		Objectives: []Objective{
			{Name: "tail", Signal: SignalLatencyP95, Threshold: 10}, // 10s: never breached
			{Name: "errors", Signal: SignalErrorRate, Threshold: 0.5},
		},
	})

	// The monitor must tick at least once so the snapshot carries data.
	deadline := time.Now().Add(5 * time.Second)
	var snap HealthSnapshot
	for {
		var ok bool
		snap, ok = db.Health()
		if !ok {
			t.Fatal("Health reports disabled despite declared Objectives")
		}
		if snap.Ticks > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health monitor never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	if len(snap.Objectives) != 2 {
		t.Fatalf("snapshot has %d objectives, want 2: %+v", len(snap.Objectives), snap.Objectives)
	}
	names := map[string]bool{}
	for _, o := range snap.Objectives {
		names[o.Name] = true
		if len(o.Windows) != 3 {
			t.Fatalf("objective %s has %d windows, want 3", o.Name, len(o.Windows))
		}
	}
	if !names["tail"] || !names["errors"] {
		t.Fatalf("objective names missing: %+v", names)
	}

	// With generous thresholds and a healthy workload the service is ok,
	// and the two views of overall state agree.
	if st := db.HealthStatus(); st != snap.Status && st != HealthOK {
		t.Fatalf("HealthStatus %v disagrees with snapshot %v", st, snap.Status)
	}
	alerts := db.Alerts()
	if len(alerts.Active) != 0 {
		t.Fatalf("active alerts under a healthy workload: %+v", alerts.Active)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Health(); !ok {
		// Health stays answerable after Close (the monitor is just frozen);
		// it must not panic or block.
		t.Log("Health disabled after Close")
	}
	deadline = time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHealthConcurrentWithQueries races objective evaluation (driven by
// the sampler goroutine) against live queries and concurrent readers of
// every health accessor. Run under -race in CI: it proves the monitor's
// locking discipline — eval inside the sampler callback, snapshots under
// RLock — holds when the facade is hammered from many goroutines.
func TestHealthConcurrentWithQueries(t *testing.T) {
	db := seededDB(t, Options{
		Policy:          Adaptive,
		HistoryInterval: time.Millisecond, // aggressive: eval races everything below
		Objectives: []Objective{
			{Name: "tail", Signal: SignalLatencyP95, Threshold: 10},
			{Name: "skip", Signal: SignalSkipRate, Threshold: 0.01},
			{Name: "queue", Signal: SignalQueueDepth, Threshold: 1 << 20},
		},
	})
	defer db.Close()

	const workers = 4
	stop := make(chan struct{})
	var snapshots, reads atomic.Int64
	var wg sync.WaitGroup

	// Query writers: keep the engine (and therefore the sampler's
	// cumulative counters) moving the whole time.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lo := ((i + w*5) % 20) * 1000
				if _, err := db.Exec("SELECT COUNT(*) FROM events WHERE v BETWEEN " +
					itoa(lo) + " AND " + itoa(lo+6)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Health readers: every accessor, from several goroutines at once.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if snap, ok := db.Health(); ok {
					if len(snap.Objectives) != 3 {
						t.Errorf("snapshot lost objectives: %d", len(snap.Objectives))
						return
					}
					snapshots.Add(1)
				}
				_ = db.HealthStatus()
				a := db.Alerts()
				for _, tr := range a.History {
					if tr.Objective == "" {
						t.Error("alert transition with empty objective name")
						return
					}
				}
				reads.Add(1)
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if snapshots.Load() == 0 || reads.Load() == 0 {
		t.Fatalf("readers made no progress: %d snapshots, %d reads",
			snapshots.Load(), reads.Load())
	}
	snap, _ := db.Health()
	if snap.Ticks == 0 {
		t.Fatal("monitor never ticked while racing queries")
	}
}
