// Command adskip-gen generates synthetic datasets as table snapshots the
// demo REPL (and any adskip program) can load.
//
// Usage:
//
//	adskip-gen -rows 1000000 -dist clustered -out data.adsk
//
// The generated table is named "data" and has columns:
//
//	v     BIGINT   — the distribution under test
//	seq   BIGINT   — row sequence number (always sorted)
//	noise DOUBLE   — uniform noise (never skippable)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"adskip/internal/faultinject"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/workload"
)

func main() {
	var (
		rows    = flag.Int("rows", 1<<20, "rows to generate")
		dist    = flag.String("dist", "clustered", "distribution: sorted|semi-sorted|clustered|uniform|zipf|bimodal")
		seed    = flag.Int64("seed", 42, "RNG seed")
		out     = flag.String("out", "data.adsk", "output snapshot path")
		corrupt = flag.Bool("corrupt", false, "deliberately corrupt the snapshot checksum (for testing load recovery)")
	)
	flag.Parse()

	var d workload.Distribution
	switch *dist {
	case "sorted":
		d = workload.Sorted
	case "semi-sorted":
		d = workload.SemiSorted
	case "clustered":
		d = workload.Clustered
	case "uniform":
		d = workload.Uniform
	case "zipf":
		d = workload.Zipf
	case "bimodal":
		d = workload.Bimodal
	default:
		fmt.Fprintf(os.Stderr, "adskip-gen: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	vals := workload.Generate(workload.DataSpec{
		N: *rows, Dist: d, Domain: int64(*rows), Seed: *seed,
	})
	rng := rand.New(rand.NewSource(*seed + 1))

	tbl := table.MustNew("data", table.Schema{
		{Name: "v", Type: storage.Int64},
		{Name: "seq", Type: storage.Int64},
		{Name: "noise", Type: storage.Float64},
	})
	for i, v := range vals {
		err := tbl.AppendRow(storage.IntValue(v), storage.IntValue(int64(i)),
			storage.FloatValue(rng.Float64()*1000))
		if err != nil {
			fmt.Fprintf(os.Stderr, "adskip-gen: %v\n", err)
			os.Exit(1)
		}
	}

	if *corrupt {
		// Route the write through the fault injector so the trailing
		// checksum gets a flipped byte: loaders must reject the snapshot
		// with a checksum error instead of ingesting corrupt data.
		restore := faultinject.Activate(faultinject.New(*seed).
			Set(faultinject.CodecCorrupt, faultinject.Rule{Every: 1}))
		defer restore()
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adskip-gen: %v\n", err)
		os.Exit(1)
	}
	n, err := tbl.WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "adskip-gen: %v\n", err)
		os.Exit(1)
	}
	if *corrupt {
		fmt.Printf("wrote DELIBERATELY CORRUPT snapshot: %d rows (%s, %d bytes) to %s\n", *rows, *dist, n, *out)
		return
	}
	fmt.Printf("wrote %d rows (%s, %d bytes) to %s\n", *rows, *dist, n, *out)
}
