// Command adskip-gen generates synthetic datasets as table snapshots the
// demo REPL (and any adskip program) can load.
//
// Usage:
//
//	adskip-gen -rows 1000000 -dist clustered -out data.adsk
//
// The generated table is named "data" and has columns:
//
//	v     BIGINT   — the distribution under test
//	seq   BIGINT   — row sequence number (always sorted)
//	noise DOUBLE   — uniform noise (never skippable)
//
// With -wal-dir, -corrupt switches targets: instead of writing a
// snapshot it damages the newest WAL segment in that directory (flip a
// payload byte, or truncate mid-record), for rehearsing what recovery
// does with a disk that lied.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"adskip/internal/faultinject"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/workload"
)

func main() {
	var (
		rows    = flag.Int("rows", 1<<20, "rows to generate")
		dist    = flag.String("dist", "clustered", "distribution: sorted|semi-sorted|clustered|uniform|zipf|bimodal")
		seed    = flag.Int64("seed", 42, "RNG seed")
		out     = flag.String("out", "data.adsk", "output snapshot path")
		corrupt = flag.Bool("corrupt", false, "deliberately corrupt the output: the snapshot checksum, or (with -wal-dir) a WAL segment")
		walDir  = flag.String("wal-dir", "", "with -corrupt: damage the newest WAL segment in this directory instead of writing a snapshot")
		walMode = flag.String("wal-corrupt", "flip", "WAL damage mode (with -wal-dir): flip = xor a payload byte (checksum mismatch), truncate = cut the file mid-record (torn tail)")
	)
	flag.Parse()

	if *walDir != "" {
		if !*corrupt {
			fmt.Fprintln(os.Stderr, "adskip-gen: -wal-dir is a corruption target; it requires -corrupt")
			os.Exit(2)
		}
		if err := corruptWAL(*walDir, *walMode, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "adskip-gen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var d workload.Distribution
	switch *dist {
	case "sorted":
		d = workload.Sorted
	case "semi-sorted":
		d = workload.SemiSorted
	case "clustered":
		d = workload.Clustered
	case "uniform":
		d = workload.Uniform
	case "zipf":
		d = workload.Zipf
	case "bimodal":
		d = workload.Bimodal
	default:
		fmt.Fprintf(os.Stderr, "adskip-gen: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	vals := workload.Generate(workload.DataSpec{
		N: *rows, Dist: d, Domain: int64(*rows), Seed: *seed,
	})
	rng := rand.New(rand.NewSource(*seed + 1))

	tbl := table.MustNew("data", table.Schema{
		{Name: "v", Type: storage.Int64},
		{Name: "seq", Type: storage.Int64},
		{Name: "noise", Type: storage.Float64},
	})
	for i, v := range vals {
		err := tbl.AppendRow(storage.IntValue(v), storage.IntValue(int64(i)),
			storage.FloatValue(rng.Float64()*1000))
		if err != nil {
			fmt.Fprintf(os.Stderr, "adskip-gen: %v\n", err)
			os.Exit(1)
		}
	}

	if *corrupt {
		// Route the write through the fault injector so the trailing
		// checksum gets a flipped byte: loaders must reject the snapshot
		// with a checksum error instead of ingesting corrupt data.
		restore := faultinject.Activate(faultinject.New(*seed).
			Set(faultinject.CodecCorrupt, faultinject.Rule{Every: 1}))
		defer restore()
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adskip-gen: %v\n", err)
		os.Exit(1)
	}
	n, err := tbl.WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "adskip-gen: %v\n", err)
		os.Exit(1)
	}
	if *corrupt {
		fmt.Printf("wrote DELIBERATELY CORRUPT snapshot: %d rows (%s, %d bytes) to %s\n", *rows, *dist, n, *out)
		return
	}
	fmt.Printf("wrote %d rows (%s, %d bytes) to %s\n", *rows, *dist, n, *out)
}

// corruptWAL damages the newest live segment (NNNNNNNN.wal, spares
// excluded) in dir. flip xors one byte past the 24-byte segment header —
// replay reports a checksum mismatch (or torn frame, if the byte lands
// in framing) and truncates there. truncate cuts the last few bytes so
// the final record is torn mid-frame, the exact shape a crash mid-write
// leaves behind.
func corruptWAL(dir, mode string, seed int64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var segs []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".wal") && !strings.HasPrefix(name, "spare-") {
			segs = append(segs, name)
		}
	}
	if len(segs) == 0 {
		return fmt.Errorf("no WAL segments in %s", dir)
	}
	sort.Strings(segs) // zero-padded indexes sort chronologically
	path := filepath.Join(dir, segs[len(segs)-1])
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	const segHeader = 24 // magic + index + base LSN; keep in sync with internal/wal
	if info.Size() <= segHeader {
		return fmt.Errorf("%s holds no records (%d bytes)", path, info.Size())
	}
	switch mode {
	case "flip":
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		body := info.Size() - segHeader
		off := segHeader + rand.New(rand.NewSource(seed)).Int63n(body)
		b := make([]byte, 1)
		if _, err := f.ReadAt(b, off); err != nil {
			return err
		}
		b[0] ^= 0x40
		if _, err := f.WriteAt(b, off); err != nil {
			return err
		}
		fmt.Printf("DELIBERATELY CORRUPTED %s: flipped byte at offset %d\n", path, off)
	case "truncate":
		// Dropping up to 7 bytes always lands mid-frame (a complete frame
		// is at least 8), leaving a torn final record.
		cut := info.Size() - 7
		if cut < segHeader {
			cut = segHeader
		}
		if err := os.Truncate(path, cut); err != nil {
			return err
		}
		fmt.Printf("DELIBERATELY CORRUPTED %s: truncated %d -> %d bytes (torn tail)\n", path, info.Size(), cut)
	default:
		return fmt.Errorf("unknown -wal-corrupt mode %q (want flip or truncate)", mode)
	}
	return nil
}
