// Command adskip-server serves an adskip database over TCP using the
// internal/server query service. The dataset is either loaded from an
// adskip-gen snapshot (-load) or generated in-process (-rows/-dist/-seed,
// same shape as adskip-gen: table "data" with v BIGINT, seq BIGINT,
// noise DOUBLE).
//
// Usage:
//
//	adskip-server -rows 1000000 -dist clustered -addr :7878 -telemetry 127.0.0.1:0
//	adskip-server -load data.adsk
//	adskip-server -rows 100000 -wal-dir /var/lib/adskip/wal
//
// With -wal-dir the server is durable: inserts are group-committed to a
// write-ahead log before they are acknowledged, and on startup the WAL
// is replayed (after the listener is up, so clients see retryable
// "recovering" refusals rather than connection errors). The base dataset
// is deterministic from its flags and is not logged — only ingest is.
//
// SIGINT/SIGTERM drains: in-flight queries finish and are answered, then
// the WAL is flushed and closed, the process prints "drained" and exits 0.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"adskip"
	"adskip/internal/faultinject"
	"adskip/internal/health"
	"adskip/internal/server"
	"adskip/internal/storage"
	"adskip/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":7878", "query service listen address")
		telemetry = flag.String("telemetry", "", "telemetry HTTP listen address (empty = off)")
		load      = flag.String("load", "", "load a table snapshot instead of generating data")
		rows      = flag.Int("rows", 1<<20, "rows to generate (ignored with -load)")
		dist      = flag.String("dist", "clustered", "distribution: sorted|semi-sorted|clustered|uniform|zipf|bimodal")
		seed      = flag.Int64("seed", 42, "RNG seed for generated data")
		policy    = flag.String("policy", "adaptive", "skipping policy: none|static|adaptive|imprint")
		zone      = flag.Int("static-zone", 0, "zone size for the static policy (0 = default)")
		par       = flag.Int("parallelism", 1, "scan parallelism")
		maxConc   = flag.Int("max-concurrent", 0, "max in-flight queries across the DB (0 = unbounded)")
		maxConns  = flag.Int("max-conns", 0, "max simultaneous connections (0 = server default)")
		maxFrame  = flag.Int("max-frame", 0, "max protocol frame bytes (0 = default)")
		idle      = flag.Duration("idle", 0, "connection idle timeout (0 = default)")
		stmtCache = flag.Int("stmt-cache", 0, "prepared-statement cache capacity (0 = default)")
		skipCols  = flag.String("skip-cols", "v,seq", "comma-separated columns to enable skipping on")
		logMode   = flag.String("log", "off", "structured logging to stderr: off|text|json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
		shards    = flag.Int("shards", 1, "partition each table into N shards with scatter-gather execution (1 = unsharded)")
		shardKey  = flag.String("shard-key", "v", "column sharding partitions on (requires -shards > 1)")
		shardBy   = flag.String("shard-by", "range", "partitioning scheme: range|hash (requires -shards > 1)")

		walDir    = flag.String("wal-dir", "", "write-ahead log directory: arms durable ingest and crash recovery (empty = volatile)")
		walWindow = flag.Duration("wal-window", 0, "group-commit linger window (0 = default 2ms; requires -wal-dir)")
		walNoSync = flag.Bool("wal-no-sync", false, "skip fsync on WAL writes (testing only: crashes lose acked data)")
		faultCrash = flag.String("fault-crash", "",
			"arm a deterministic crash as point:N (SIGKILL on the N-th trigger of that WAL injection point), e.g. wal-crash-after-sync:25; points: "+strings.Join(faultinject.Points(), ", "))

		sloP95     = flag.Duration("slo-p95", 0, "p95 latency SLO threshold (0 = objective off), e.g. 5ms")
		sloErr     = flag.Float64("slo-err", 0, "error-rate SLO threshold in (0,1) (0 = objective off)")
		sloSkip    = flag.Float64("slo-skip", 0, "minimum skip-rate SLO threshold in (0,1] (0 = objective off)")
		sloWALLag  = flag.Duration("slo-wal-lag", 0, "max WAL fsync lag SLO threshold (0 = objective off; requires -wal-dir)")
		sloSkipReg = flag.Float64("slo-skip-regression", 0, "max per-template skip-rate regression vs learned baseline, in (0,1) (0 = objective off; shed-exempt: alerts but never refuses queries)")
		sloWindows = flag.String("slo-windows", "", "burn-rate windows as short,mid,long (default 10s,1m,5m)")
		histInt    = flag.Duration("history-interval", 0, "health/timeline sampling interval (0 = default 1s)")
		faultDelay = flag.Duration("fault-scan-delay", 0,
			"arm a scan-delay fault toggled at runtime: SIGUSR1 injects this delay per scan checkpoint, SIGUSR2 clears it (0 = off)")
	)
	flag.Parse()

	logger := makeLogger(*logMode, *logLevel)
	opts := adskip.Options{
		StaticZoneSize:       *zone,
		Parallelism:          *par,
		MaxConcurrentQueries: *maxConc,
		HistoryInterval:      *histInt,
		Logger:               logger,
		Shards:               *shards,
		ShardKey:             *shardKey,
		ShardBy:              *shardBy,
	}
	if *sloP95 > 0 {
		opts.Objectives = append(opts.Objectives,
			adskip.Objective{Name: "latency-p95", Signal: adskip.SignalLatencyP95, Threshold: sloP95.Seconds()})
	}
	if *sloErr > 0 {
		opts.Objectives = append(opts.Objectives,
			adskip.Objective{Name: "error-rate", Signal: adskip.SignalErrorRate, Threshold: *sloErr})
	}
	if *sloSkip > 0 {
		opts.Objectives = append(opts.Objectives,
			adskip.Objective{Name: "skip-rate", Signal: adskip.SignalSkipRate, Threshold: *sloSkip})
	}
	if *sloWALLag > 0 {
		if *walDir == "" {
			fatalf("-slo-wal-lag requires -wal-dir")
		}
		opts.Objectives = append(opts.Objectives,
			adskip.Objective{Name: "wal-lag", Signal: adskip.SignalWALLag, Threshold: sloWALLag.Seconds()})
	}
	if *sloSkipReg > 0 {
		opts.Objectives = append(opts.Objectives,
			adskip.Objective{Name: "skip-regression", Signal: adskip.SignalSkipRegression, Threshold: *sloSkipReg})
	}
	if *walDir != "" {
		opts.Durability = adskip.Durability{
			Dir:          *walDir,
			GroupWindow:  *walWindow,
			DisableFsync: *walNoSync,
		}
	} else if *walWindow != 0 || *walNoSync {
		fatalf("-wal-window/-wal-no-sync require -wal-dir")
	}
	if *sloWindows != "" {
		short, mid, long, err := health.ParseWindows(*sloWindows)
		if err != nil {
			fatalf("-slo-windows: %v", err)
		}
		opts.Health.Short, opts.Health.Mid, opts.Health.Long = short, mid, long
	}
	switch *policy {
	case "none":
		opts.Policy = adskip.None
	case "static":
		opts.Policy = adskip.Static
	case "adaptive":
		opts.Policy = adskip.Adaptive
	case "imprint":
		opts.Policy = adskip.Imprint
	default:
		fatalf("unknown policy %q", *policy)
	}
	db := adskip.Open(opts)

	var tbl *adskip.Table
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatalf("%v", err)
		}
		tbl, err = db.LoadTable(f)
		f.Close()
		if err != nil {
			fatalf("load %s: %v", *load, err)
		}
		fmt.Printf("loaded table %q: %d rows\n", tbl.Name(), tbl.NumRows())
	} else {
		tbl = generate(db, *rows, *dist, *seed)
		fmt.Printf("generated table %q: %d rows (%s)\n", tbl.Name(), tbl.NumRows(), *dist)
	}
	if n := tbl.Shards(); n > 1 {
		fmt.Printf("sharded: %d shards on %q (%s)\n", n, *shardKey, *shardBy)
	}
	for _, col := range strings.Split(*skipCols, ",") {
		col = strings.TrimSpace(col)
		if col == "" {
			continue
		}
		if err := tbl.EnableSkipping(col); err != nil {
			fatalf("enable skipping on %q: %v", col, err)
		}
	}

	if *telemetry != "" {
		url, err := db.StartTelemetry(*telemetry)
		if err != nil {
			fatalf("telemetry: %v", err)
		}
		fmt.Printf("telemetry: %s\n", url)
		fmt.Printf("dashboard: %s/dash\n", url)
		if len(opts.Objectives) > 0 {
			fmt.Printf("health: %s/health\n", url)
		}
	}
	if *faultDelay > 0 {
		armFaultToggle(*faultDelay)
	}
	if *faultCrash != "" {
		armCrash(*faultCrash)
	}

	srv, err := server.Start(db, server.Options{
		Addr:          *addr,
		MaxConns:      *maxConns,
		MaxFrameBytes: *maxFrame,
		IdleTimeout:   *idle,
		StmtCacheSize: *stmtCache,
		Logger:        logger,
		// With declared objectives the server sheds query load during
		// critical burn instead of digging the latency hole deeper.
		RefuseOnCritical: len(opts.Objectives) > 0,
	})
	if err != nil {
		fatalf("%v", err)
	}
	// Arm the drain signal before announcing the address: a supervisor
	// that SIGTERMs the instant it sees output must get a graceful drain,
	// not the default kill disposition.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	fmt.Printf("listening on %s\n", srv.Addr())

	// Recovery runs AFTER the listener is up: clients connecting during a
	// long replay get a retryable "recovering" refusal instead of a
	// connection error, so a retrying fleet rides through a restart. Base
	// data loaded or generated above is deterministic and is NOT in the
	// WAL — only post-recovery ingest is logged.
	if *walDir != "" {
		stats, err := db.Recover()
		if err != nil {
			fatalf("wal recovery: %v", err)
		}
		// One parseable line the crash-torture harness greps for.
		fmt.Printf("wal recovered: segments=%d records=%d rows=%d torn=%v dropped_bytes=%d elapsed=%s\n",
			stats.Segments, stats.Records, stats.Rows, stats.TornTail, stats.DroppedBytes,
			stats.Elapsed.Round(time.Microsecond))
	}
	fmt.Println("ready")

	<-sig
	fmt.Println("shutting down: draining connections")
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "adskip-server: close: %v\n", err)
	}
	db.Close()
	fmt.Println("drained")
}

// armFaultToggle wires runtime fault injection to signals: SIGUSR1
// activates a deterministic scan-delay injector (every scan checkpoint
// sleeps d), SIGUSR2 deactivates it. Smoke tests use this to drive the
// health monitor through a 200 -> 503 -> 200 readiness flip without
// needing real overload.
func armFaultToggle(d time.Duration) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGUSR1, syscall.SIGUSR2)
	go func() {
		for s := range ch {
			if s == syscall.SIGUSR1 {
				faultinject.Activate(faultinject.New(1).
					Set(faultinject.ScanDelay, faultinject.Rule{Prob: 1, Delay: d}))
				fmt.Printf("fault armed: scan-delay %s per checkpoint\n", d)
			} else {
				faultinject.Deactivate()
				fmt.Println("fault cleared")
			}
		}
	}()
	fmt.Printf("fault toggle ready: SIGUSR1 injects scan-delay %s, SIGUSR2 clears\n", d)
}

// armCrash installs a one-shot SIGKILL at a named WAL injection point:
// "point:N" fires on the N-th trigger of that point. This is how the
// crash-torture harness makes a child server die at a precise moment in
// the commit pipeline — deterministically, so a failure reproduces.
func armCrash(spec string) {
	name, nStr, ok := strings.Cut(spec, ":")
	if !ok {
		fatalf("-fault-crash: want point:N, got %q", spec)
	}
	p, err := faultinject.ParsePoint(name)
	if err != nil {
		fatalf("-fault-crash: %v (points: %s)", err, strings.Join(faultinject.Points(), ", "))
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n < 1 {
		fatalf("-fault-crash: bad trigger count %q", nStr)
	}
	faultinject.Activate(faultinject.New(1).
		Set(p, faultinject.Rule{After: n - 1, Limit: 1}))
	fmt.Printf("fault armed: %s on trigger %d\n", p, n)
}

// generate builds the adskip-gen dataset shape in-process: v carries the
// requested distribution over a domain equal to the row count, seq is
// the row number, noise is uniform and never skippable.
func generate(db *adskip.DB, rows int, dist string, seed int64) *adskip.Table {
	var d workload.Distribution
	switch dist {
	case "sorted":
		d = workload.Sorted
	case "semi-sorted":
		d = workload.SemiSorted
	case "clustered":
		d = workload.Clustered
	case "uniform":
		d = workload.Uniform
	case "zipf":
		d = workload.Zipf
	case "bimodal":
		d = workload.Bimodal
	default:
		fatalf("unknown distribution %q", dist)
	}
	vals := workload.Generate(workload.DataSpec{N: rows, Dist: d, Domain: int64(rows), Seed: seed})
	rng := rand.New(rand.NewSource(seed + 1))

	tbl, err := db.CreateTable("data",
		adskip.Col("v", storage.Int64),
		adskip.Col("seq", storage.Int64),
		adskip.Col("noise", storage.Float64),
	)
	if err != nil {
		fatalf("%v", err)
	}
	// Batched ingest: one row at a time serializes on the append lock and
	// (sharded) routes each row separately; 64k-row batches amortize both.
	const batchSize = 1 << 16
	batch := make([][]adskip.Value, 0, batchSize)
	for i, v := range vals {
		batch = append(batch, []adskip.Value{
			adskip.IntValue(v), adskip.IntValue(int64(i)), adskip.FloatValue(rng.Float64() * 1000)})
		if len(batch) == batchSize || i == len(vals)-1 {
			if err := tbl.AppendBatch(batch); err != nil {
				fatalf("%v", err)
			}
			batch = batch[:0]
		}
	}
	return tbl
}

// makeLogger builds the slog.Logger the engine and query service share,
// or nil (logging disabled) for mode "off".
func makeLogger(mode, level string) *slog.Logger {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		fatalf("unknown log level %q", level)
	}
	ho := &slog.HandlerOptions{Level: lvl}
	switch mode {
	case "off":
		return nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, ho))
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, ho))
	default:
		fatalf("unknown log mode %q", mode)
		return nil
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adskip-server: "+format+"\n", args...)
	os.Exit(1)
}
