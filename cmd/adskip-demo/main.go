// Command adskip-demo is an interactive SQL REPL over the adaptive column
// store, in the spirit of the paper's demonstration: run queries, then
// inspect how the adaptive zonemap reshaped itself.
//
// Meta-commands:
//
//	\gen <dist> <rows>   create table "data" with a synthetic distribution
//	\load <file>         load a table snapshot (see adskip-gen)
//	\save <file>         save table "data"
//	\skipping [col]      describe zone metadata for a column (default v)
//	\stats               adaptive lifetime counters per column
//	\top                 hottest query templates + per-column skipping
//	\timeout <dur|off>   cancel statements that run longer than dur
//	\quarantine          list columns whose metadata failed and was benched
//	\rebuild [cols]      rebuild quarantined skipping metadata
//	\fault scan-delay <dur>|off  inject a per-checkpoint scan delay
//	\health              SLO status and burn rates (with -slo-* flags)
//	\policy              show the active skipping policy
//	\help                this text
//	\quit                exit
//
// Everything else is parsed as SQL, e.g.:
//
//	SELECT COUNT(*) FROM data WHERE v BETWEEN 1000 AND 2000;
//	SELECT seq, COUNT(*) FROM data WHERE (v < 100 OR v > 900) GROUP BY seq LIMIT 5;
//	EXPLAIN SELECT COUNT(*) FROM data WHERE v < 1000;
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"adskip/internal/adaptive"
	"adskip/internal/engine"
	"adskip/internal/faultinject"
	"adskip/internal/health"
	"adskip/internal/obs"
	"adskip/internal/sql"
	"adskip/internal/stats"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/telemetry"
	"adskip/internal/workload"
)

type repl struct {
	opts    engine.Options
	out     *bufio.Writer
	perq    bool            // --metrics: print per-query trace after each statement
	timeout time.Duration   // \timeout: per-statement deadline (0 = none)
	mon     *health.Monitor // \health: SLO monitor (nil without -slo-* flags)

	// mu guards eng: the REPL loop swaps it on \gen/\load while the
	// telemetry server's skipmap closure reads it from HTTP goroutines.
	mu  sync.Mutex
	eng *engine.Engine // current table's engine (nil until \gen or \load)
}

// engine returns the current engine under the lock (nil if none).
func (r *repl) engine() *engine.Engine {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eng
}

// skipmap is the telemetry server's /skipmap source.
func (r *repl) skipmap(maxZones int) []obs.SkipmapTable {
	e := r.engine()
	if e == nil {
		return nil
	}
	return []obs.SkipmapTable{e.Skipmap(maxZones)}
}

// adaptation is the telemetry server's /adaptation source: the
// session-level ledger (it survives \gen/\load engine swaps, like the
// event log) joined with the current engine's ROI rows.
func (r *repl) adaptation(maxDead int) obs.AdaptationSnapshot {
	snap := obs.AdaptationSnapshot{
		Total:   r.opts.Ledger.Seq(),
		Dropped: r.opts.Ledger.Dropped(),
		Events:  r.opts.Ledger.Records(),
		ROI:     []obs.ColumnROI{},
	}
	if e := r.engine(); e != nil {
		snap.ROI = append(snap.ROI, e.AdaptationROI(maxDead)...)
	}
	return snap
}

// fillHistory is the sampler's fill callback: the current engine's
// cumulative totals plus the merged latency histogram, same shape the DB
// facade produces, so the health monitor and /history see one timeline
// across \gen and \load swaps (counters reset with the engine — the
// monitor's per-tick deltas just see a quiet tick at the swap).
func (r *repl) fillHistory(s *obs.HistorySample) {
	e := r.engine()
	if e == nil {
		return
	}
	bounds := obs.LatencyBuckets()
	buckets := s.LatencyBuckets[:0]
	for i := 0; i < len(bounds)+1; i++ {
		buckets = append(buckets, 0)
	}
	e.FillHistory(s)
	e.AccumulateLatency(buckets)
	s.LatencyBuckets = buckets
	if denom := s.RowsSkipped + s.RowsScanned; denom > 0 {
		s.SkipRatio = float64(s.RowsSkipped) / float64(denom)
	}
	s.LatencyP50 = obs.QuantileFromBuckets(bounds, buckets, 0.50)
	s.LatencyP95 = obs.QuantileFromBuckets(bounds, buckets, 0.95)
	s.AdaptEvents = int64(r.opts.Events.Seq())
}

func main() {
	var (
		policy    = flag.String("policy", "adaptive", "skipping policy: none|static|adaptive|imprint")
		zone      = flag.Int("static-zone", 65536, "zone size for static policy")
		metrics   = flag.Bool("metrics", false, "print the per-query trace after every statement")
		serve     = flag.Bool("serve", false, "serve live telemetry over HTTP (see -serve-addr)")
		serveAddr = flag.String("serve-addr", "127.0.0.1:0", "telemetry listen address (with -serve; :0 picks an ephemeral port)")
		slow      = flag.Duration("slow", 0, "log queries at least this slow to the slow-query ring (0 = off)")

		sloP95     = flag.Duration("slo-p95", 0, "p95 latency SLO threshold (0 = objective off), e.g. 5ms")
		sloErr     = flag.Float64("slo-err", 0, "error-rate SLO threshold in (0,1) (0 = objective off)")
		sloSkip    = flag.Float64("slo-skip", 0, "minimum skip-rate SLO threshold in (0,1] (0 = objective off)")
		sloWindows = flag.String("slo-windows", "", "burn-rate windows as short,mid,long (default 10s,1m,5m)")
		histInt    = flag.Duration("history-interval", 0, "health/timeline sampling interval (0 = default 1s)")
	)
	flag.Parse()

	opts := engine.Options{
		StaticZoneSize: *zone,
		// One registry, event log, and trace rings for the whole session:
		// \metrics, \events, and the telemetry server survive table
		// reloads (attach rebuilds the engine).
		Metrics:            obs.NewRegistry(),
		Events:             obs.NewEventLog(0),
		Ledger:             obs.NewLedger(0),
		Traces:             obs.NewTraceRing(0),
		SlowTraces:         obs.NewTraceRing(0),
		SlowQueryThreshold: *slow,
	}
	// Workload analytics share the session registry and, like it, survive
	// table reloads: \top and /workload aggregate across \gen/\load swaps.
	opts.Stats = stats.New(stats.Options{Registry: opts.Metrics})
	switch *policy {
	case "none":
		opts.Policy = engine.PolicyNone
	case "static":
		opts.Policy = engine.PolicyStatic
	case "adaptive":
		opts.Policy = engine.PolicyAdaptive
	case "imprint":
		opts.Policy = engine.PolicyImprint
	default:
		fmt.Fprintf(os.Stderr, "adskip-demo: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	r := &repl{opts: opts, out: bufio.NewWriter(os.Stdout), perq: *metrics}
	defer r.out.Flush()

	var objectives []health.Objective
	if *sloP95 > 0 {
		objectives = append(objectives,
			health.Objective{Name: "latency-p95", Signal: health.SignalLatencyP95, Threshold: sloP95.Seconds()})
	}
	if *sloErr > 0 {
		objectives = append(objectives,
			health.Objective{Name: "error-rate", Signal: health.SignalErrorRate, Threshold: *sloErr})
	}
	if *sloSkip > 0 {
		objectives = append(objectives,
			health.Objective{Name: "skip-rate", Signal: health.SignalSkipRate, Threshold: *sloSkip})
	}
	var hcfg health.Config
	if *sloWindows != "" {
		short, mid, long, err := health.ParseWindows(*sloWindows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adskip-demo: -slo-windows: %v\n", err)
			os.Exit(2)
		}
		hcfg.Short, hcfg.Mid, hcfg.Long = short, mid, long
	}

	// The timeline sampler feeds both /history and the health monitor; it
	// exists whenever either consumer does.
	var sampler *obs.Sampler
	if *serve || len(objectives) > 0 {
		sampler = obs.NewSampler(*histInt, 0, r.fillHistory)
		defer sampler.Stop()
	}
	if len(objectives) > 0 {
		mon, err := health.New(objectives, sampler.Interval(), hcfg, opts.Metrics, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adskip-demo: %v\n", err)
			os.Exit(2)
		}
		r.mon = mon
		defer sampler.Subscribe(mon.OnSample)()
	}

	if *serve {
		src := telemetry.Source{
			Registry:   opts.Metrics,
			Traces:     opts.Traces,
			SlowTraces: opts.SlowTraces,
			Events:     opts.Events.Events,
			Skipmap:    r.skipmap,
			History:    sampler,
			Workload:   opts.Stats,
			Adaptation: r.adaptation,
		}
		if mon := r.mon; mon != nil {
			src.Health = func() (health.Snapshot, bool) { return mon.Snapshot(), true }
			src.Alerts = mon.Alerts
		}
		srv, err := telemetry.Start(telemetry.Options{Addr: *serveAddr}, src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adskip-demo: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(r.out, "telemetry: %s\n", srv.URL())
	}

	fmt.Fprintf(r.out, "adskip demo — policy=%s. Type \\help for commands.\n", *policy)
	r.out.Flush()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(r.out, "adskip> ")
		r.out.Flush()
		if !sc.Scan() {
			fmt.Fprintln(r.out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if !r.meta(line) {
				return
			}
		} else {
			r.query(line)
		}
		r.out.Flush()
	}
}

// meta executes a backslash command; returns false to exit.
func (r *repl) meta(line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\quit", "\\q":
		return false
	case "\\help":
		fmt.Fprint(r.out, `\gen <dist> <rows>  create table "data" (dist: sorted|semi-sorted|clustered|uniform|zipf|bimodal)
\load <file>        load a snapshot        \save <file>  save table "data"
\loadcsv <file>     load a CSV file (schema inferred)
\skipping [col]     describe zone metadata \stats        adaptive counters
\metrics [json]     dump engine metrics (Prometheus text, or JSON)
\top                hottest query templates (calls, p95, cpu%) + skipmap
\events [n]         show the last n adaptation events (default 20)
\trace              toggle per-query trace printing (same as --metrics)
\timeout <dur|off>  cancel statements running longer than dur (e.g. 500ms)
\quarantine         list quarantined columns    \rebuild      rebuild their metadata
\fault scan-delay <dur> | \fault off   inject a per-checkpoint scan delay (SLO/chaos demos)
\health             SLO status and per-objective burn rates (needs -slo-* flags)
\policy             active policy          \quit         exit
SQL: SELECT [cols|aggs] FROM data [WHERE ...] [GROUP BY c] [ORDER BY c [DESC]] [LIMIT n]
     predicates: = <> < <= > >= BETWEEN IN IS [NOT] NULL (a=1 OR a=2)
     EXPLAIN SELECT ... shows the plan; EXPLAIN ANALYZE SELECT ... executes and shows actual pruning
`)
	case "\\policy":
		fmt.Fprintf(r.out, "policy: %s\n", r.opts.Policy)
	case "\\gen":
		if len(fields) != 3 {
			fmt.Fprintln(r.out, "usage: \\gen <dist> <rows>")
			return true
		}
		r.gen(fields[1], fields[2])
	case "\\load":
		if len(fields) != 2 {
			fmt.Fprintln(r.out, "usage: \\load <file>")
			return true
		}
		r.load(fields[1])
	case "\\loadcsv":
		if len(fields) != 2 {
			fmt.Fprintln(r.out, "usage: \\loadcsv <file.csv>")
			return true
		}
		r.loadCSV(fields[1])
	case "\\save":
		if len(fields) != 2 || r.eng == nil {
			fmt.Fprintln(r.out, "usage: \\save <file> (after \\gen or \\load)")
			return true
		}
		r.save(fields[1])
	case "\\skipping":
		col := "v"
		if len(fields) > 1 {
			col = fields[1]
		}
		r.skipping(col)
	case "\\stats":
		r.stats()
	case "\\metrics":
		format := "prom"
		if len(fields) > 1 {
			format = fields[1]
		}
		r.metrics(format)
	case "\\events":
		n := 20
		if len(fields) > 1 {
			if v, err := strconv.Atoi(fields[1]); err == nil && v > 0 {
				n = v
			}
		}
		r.events(n)
	case "\\trace":
		r.perq = !r.perq
		fmt.Fprintf(r.out, "per-query trace: %v\n", r.perq)
	case "\\timeout":
		if len(fields) != 2 {
			fmt.Fprintln(r.out, "usage: \\timeout <duration|off>  (e.g. \\timeout 500ms)")
			return true
		}
		if fields[1] == "off" || fields[1] == "0" {
			r.timeout = 0
			fmt.Fprintln(r.out, "statement timeout: off")
			return true
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil || d < 0 {
			fmt.Fprintf(r.out, "bad duration %q\n", fields[1])
			return true
		}
		r.timeout = d
		fmt.Fprintf(r.out, "statement timeout: %s\n", d)
	case "\\top":
		r.top()
	case "\\quarantine":
		r.quarantine()
	case "\\rebuild":
		r.rebuild(fields[1:])
	case "\\fault":
		r.fault(fields[1:])
	case "\\health":
		r.health()
	default:
		fmt.Fprintf(r.out, "unknown command %s (try \\help)\n", fields[0])
	}
	return true
}

func (r *repl) gen(dist, rowsStr string) {
	n, err := strconv.Atoi(rowsStr)
	if err != nil || n <= 0 {
		fmt.Fprintln(r.out, "bad row count")
		return
	}
	var d workload.Distribution
	switch dist {
	case "sorted":
		d = workload.Sorted
	case "semi-sorted":
		d = workload.SemiSorted
	case "clustered":
		d = workload.Clustered
	case "uniform":
		d = workload.Uniform
	case "zipf":
		d = workload.Zipf
	case "bimodal":
		d = workload.Bimodal
	default:
		fmt.Fprintf(r.out, "unknown distribution %q\n", dist)
		return
	}
	vals := workload.Generate(workload.DataSpec{N: n, Dist: d, Domain: int64(n), Seed: 42})
	tbl := table.MustNew("data", table.Schema{
		{Name: "v", Type: storage.Int64},
		{Name: "seq", Type: storage.Int64},
	})
	for i, v := range vals {
		if err := tbl.AppendRow(storage.IntValue(v), storage.IntValue(int64(i))); err != nil {
			fmt.Fprintf(r.out, "error: %v\n", err)
			return
		}
	}
	r.attach(tbl)
	fmt.Fprintf(r.out, "table \"data\": %d rows, distribution %s, skipping on all columns\n", n, dist)
}

func (r *repl) attach(tbl *table.Table) {
	e := engine.New(tbl, r.opts)
	if err := e.EnableSkipping(); err != nil {
		fmt.Fprintf(r.out, "error enabling skipping: %v\n", err)
	}
	r.mu.Lock()
	r.eng = e
	r.mu.Unlock()
}

func (r *repl) load(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	defer f.Close()
	tbl, err := table.Read(f)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	r.attach(tbl)
	fmt.Fprintf(r.out, "loaded table %q: %d rows, %d columns\n", tbl.Name(), tbl.NumRows(), tbl.NumColumns())
}

func (r *repl) loadCSV(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	defer f.Close()
	tbl, err := table.ReadCSV(f, "data", table.CSVOptions{})
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	r.attach(tbl)
	fmt.Fprintf(r.out, "loaded CSV as table %q: %d rows, %d columns\n", tbl.Name(), tbl.NumRows(), tbl.NumColumns())
	for _, cs := range tbl.Schema() {
		fmt.Fprintf(r.out, "  %-16s %s\n", cs.Name, cs.Type)
	}
}

func (r *repl) save(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	n, err := r.eng.Table().WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(r.out, "saved %d bytes to %s\n", n, path)
}

func (r *repl) skipping(col string) {
	if r.eng == nil {
		fmt.Fprintln(r.out, "no table loaded (\\gen or \\load first)")
		return
	}
	s := r.eng.Skipper(col)
	if s == nil {
		fmt.Fprintf(r.out, "no skipper on column %q\n", col)
		return
	}
	if z, ok := s.(*adaptive.Zonemap); ok {
		fmt.Fprint(r.out, z.DescribeZones(24))
		return
	}
	md := s.Metadata()
	fmt.Fprintf(r.out, "%s skipper: %d zones, %d bytes, enabled=%v\n", md.Kind, md.Zones, md.Bytes, md.Enabled)
}

func (r *repl) stats() {
	if r.eng == nil {
		fmt.Fprintln(r.out, "no table loaded")
		return
	}
	for _, cs := range r.eng.Table().Schema() {
		s := r.eng.Skipper(cs.Name)
		if z, ok := s.(*adaptive.Zonemap); ok {
			st := z.Stats()
			fmt.Fprintf(r.out, "%-8s queries=%d splits=%d merges=%d disables=%d enables=%d zones=%d\n",
				cs.Name, st.Queries, st.Splits, st.Merges, st.Disables, st.Enables, z.NumZones())
		}
	}
}

func (r *repl) metrics(format string) {
	var err error
	switch format {
	case "prom":
		err = r.opts.Metrics.WritePrometheus(r.out)
	case "json":
		err = r.opts.Metrics.WriteJSON(r.out)
	default:
		fmt.Fprintf(r.out, "unknown format %q (want prom or json)\n", format)
		return
	}
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
	}
}

func (r *repl) events(n int) {
	evs := r.opts.Events.Events()
	if len(evs) == 0 {
		fmt.Fprintln(r.out, "no adaptation events yet")
		return
	}
	if dropped := r.opts.Events.Dropped(); dropped > 0 {
		fmt.Fprintf(r.out, "(%d older events dropped from the ring)\n", dropped)
	}
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	for _, ev := range evs {
		fmt.Fprintf(r.out, "#%-5d %s %s.%s %-13s", ev.Seq, ev.Time.Format("15:04:05.000"), ev.Table, ev.Column, ev.Kind)
		if ev.Delta != 0 {
			fmt.Fprintf(r.out, " %+d zones", ev.Delta)
		}
		fmt.Fprintf(r.out, " (now %d zones)\n", ev.Zones)
	}
}

// top renders the workload's hottest query templates — the same
// aggregation /workload serves — followed by the live per-column
// skipmap. Parameterized variants of a template collapse into one row;
// cpu%% is the template's share of total recorded execution time.
func (r *repl) top() {
	if r.eng == nil {
		fmt.Fprintln(r.out, "no table loaded")
		return
	}
	snap := r.opts.Stats.Snapshot(stats.SortTime, 10)
	if len(snap.Templates) == 0 {
		fmt.Fprintln(r.out, "no query templates recorded yet (run some SQL first)")
	} else {
		fmt.Fprintf(r.out, "top templates by time (%d tracked, %d calls recorded):\n",
			snap.TotalTemplates, snap.Recorded)
		fmt.Fprintf(r.out, "%7s %6s %9s %9s %7s %7s  %s\n",
			"calls", "errs", "mean(µs)", "p95(µs)", "skip%", "cpu%", "template")
		var total float64
		for _, t := range snap.Templates {
			total += t.TotalSeconds
		}
		for _, t := range snap.Templates {
			var cpu float64
			if total > 0 {
				cpu = 100 * t.TotalSeconds / total
			}
			fmt.Fprintf(r.out, "%7d %6d %9.0f %9.0f %6.1f%% %6.1f%%  %s\n",
				t.Calls, t.Errors, t.MeanUS, t.P95US, 100*t.SkipRatio, cpu, t.Fingerprint)
		}
	}
	sm := r.eng.Skipmap(0)
	if len(sm.Columns) == 0 {
		fmt.Fprintln(r.out, "no skippers (EnableSkipping first)")
		return
	}
	fmt.Fprintf(r.out, "table %q: %d rows\n", sm.Table, sm.Rows)
	fmt.Fprintf(r.out, "%-10s %-10s %7s %8s %12s %12s %9s %s\n",
		"column", "kind", "zones", "probes", "skipped", "candidate", "skip%", "state")
	for _, c := range sm.Columns {
		state := "on"
		switch {
		case c.Quarantined:
			state = "quarantined"
		case !c.Enabled:
			state = "off"
		}
		fmt.Fprintf(r.out, "%-10s %-10s %7d %8d %12d %12d %8.1f%% %s\n",
			c.Column, c.Kind, c.Zones, c.Probes, c.RowsSkipped, c.CandidateRows,
			100*c.SkipRatio, state)
	}
}

func (r *repl) quarantine() {
	if r.eng == nil {
		fmt.Fprintln(r.out, "no table loaded")
		return
	}
	q := r.eng.Quarantined()
	if len(q) == 0 {
		fmt.Fprintln(r.out, "no quarantined columns")
		return
	}
	for col, cause := range q {
		fmt.Fprintf(r.out, "%-8s %v\n", col, cause)
	}
	fmt.Fprintln(r.out, "(quarantined columns run full scans; \\rebuild restores metadata)")
}

func (r *repl) rebuild(cols []string) {
	if r.eng == nil {
		fmt.Fprintln(r.out, "no table loaded")
		return
	}
	if err := r.eng.RebuildSkipping(cols...); err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	fmt.Fprintln(r.out, "skipping metadata rebuilt")
}

// fault toggles deterministic fault injection from the REPL: a scan
// delay slept at every cooperative checkpoint, so slow scans (and the
// SLO burn they cause) can be demonstrated on demand and then cleared.
func (r *repl) fault(args []string) {
	if len(args) == 1 && (args[0] == "off" || args[0] == "clear") {
		faultinject.Deactivate()
		fmt.Fprintln(r.out, "fault injection: off")
		return
	}
	if len(args) != 2 || args[0] != "scan-delay" {
		fmt.Fprintln(r.out, "usage: \\fault scan-delay <duration> | \\fault off")
		return
	}
	d, err := time.ParseDuration(args[1])
	if err != nil || d <= 0 {
		fmt.Fprintf(r.out, "bad duration %q\n", args[1])
		return
	}
	faultinject.Activate(faultinject.New(1).
		Set(faultinject.ScanDelay, faultinject.Rule{Prob: 1, Delay: d}))
	fmt.Fprintf(r.out, "fault injection: scan-delay %s per scan checkpoint\n", d)
}

// health prints the SLO monitor's current view: overall status plus each
// objective's state and burn rate per window.
func (r *repl) health() {
	if r.mon == nil {
		fmt.Fprintln(r.out, "no health objectives (start with -slo-p95 / -slo-err / -slo-skip)")
		return
	}
	snap := r.mon.Snapshot()
	fmt.Fprintf(r.out, "status: %s (since %s, %d ticks)\n",
		snap.Status, snap.Since.Format("15:04:05"), snap.Ticks)
	for _, o := range snap.Objectives {
		fmt.Fprintf(r.out, "%-14s %-12s state=%-8s threshold=%g", o.Name, o.Signal, o.State, o.Threshold)
		for _, w := range o.Windows {
			fmt.Fprintf(r.out, " burn[%s]=%.1f", w.Window, w.Burn)
		}
		fmt.Fprintln(r.out)
	}
}

func (r *repl) query(line string) {
	if r.eng == nil {
		fmt.Fprintln(r.out, "no table loaded (\\gen or \\load first)")
		return
	}
	ctx := context.Background()
	if r.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := sql.ExecContext(ctx, r.eng, line)
	if err != nil {
		fmt.Fprintf(r.out, "error: %v\n", err)
		return
	}
	elapsed := time.Since(start)
	switch {
	case len(res.Rows) > 0:
		fmt.Fprintln(r.out, strings.Join(res.Columns, "\t"))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Fprintln(r.out, strings.Join(cells, "\t"))
		}
		fmt.Fprintf(r.out, "(%d rows)\n", len(res.Rows))
	case len(res.Aggs) > 0:
		cells := make([]string, len(res.Aggs))
		for i, v := range res.Aggs {
			cells[i] = v.String()
		}
		fmt.Fprintln(r.out, strings.Join(cells, "\t"))
	default:
		fmt.Fprintf(r.out, "count: %d\n", res.Count)
	}
	fmt.Fprintf(r.out, "-- %.3fms | scanned %d, skipped %d, covered %d rows | %d zone probes\n",
		float64(elapsed.Nanoseconds())/1e6,
		res.Stats.RowsScanned, res.Stats.RowsSkipped, res.Stats.RowsCovered, res.Stats.ZonesProbed)
	if r.perq && res.Trace != nil {
		for _, l := range res.Trace.Lines(true) {
			fmt.Fprintf(r.out, "-- %s\n", l)
		}
	}
}
