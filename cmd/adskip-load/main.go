// Command adskip-load drives an adskip-server with closed-loop load:
// N connections each issue COUNT(*) range (or point) queries drawn from
// a Zipf-skewed template pool, as fast as the server answers them.
//
// Usage:
//
//	adskip-load -addr 127.0.0.1:7878 -conns 64 -duration 10s -domain 1000000
//	adskip-load -addr 127.0.0.1:7878 -timing
//
// With -timing every request carries a trace ID and asks the server for
// its latency breakdown; the report then attributes client-observed
// latency to server execution, server-side queueing, and the network.
//
// With -insert-frac a fraction of requests become batched inserts (the
// target table must have the adskip-gen schema: v BIGINT, seq BIGINT,
// noise DOUBLE), and -retries arms client-side retry of retryable
// refusals — requests refused while the server replays its WAL or sheds
// load, then answered on a later attempt, count as successes. The retry
// volume is reported separately.
//
// The exit status is 1 if any request failed (or, under -timing, if any
// breakdown violated its sanity invariants), so scripts can assert an
// error-free run. Retries alone never fail the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"adskip/internal/loadgen"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7878", "server address")
		conns    = flag.Int("conns", 64, "concurrent connections")
		duration = flag.Duration("duration", 5*time.Second, "run length")
		table    = flag.String("table", "data", "target table")
		col      = flag.String("col", "v", "predicate column")
		domain   = flag.Int64("domain", 1<<20, "predicate value domain [0,domain)")
		tmpls    = flag.Int("templates", 64, "distinct query templates")
		zipfS    = flag.Float64("zipf", 1.2, "Zipf skew across templates (>1)")
		sel      = flag.Float64("selectivity", 0.01, "fraction of the domain per range predicate")
		point    = flag.Bool("point", false, "equality predicates instead of ranges")
		prepared = flag.Bool("prepared", false, "use prepare/exec instead of query text")
		seed     = flag.Int64("seed", 1, "RNG seed")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		timing   = flag.Bool("timing", false, "request server-side latency breakdowns and print a network/queue/server attribution table")
		insFrac  = flag.Float64("insert-frac", 0, "fraction of requests that are inserts instead of queries (target table must have the adskip-gen schema)")
		insBatch = flag.Int("insert-batch", 16, "rows per insert request")
		retries  = flag.Int("retries", 0, "client retries for retryable refusals (recovering / load shedding); retried-then-succeeded requests are not errors")
		health   = flag.String("assert-health", "", "after the run, GET this telemetry /health URL and exit non-zero unless it answers 200 with status ok")
		wlURL    = flag.String("workload", "", "after the run, GET this telemetry /workload URL and print the top templates; exit non-zero if it answers but reports no templates")
		skipMin  = flag.Float64("assert-skip-rate", 0, "after the run, exit non-zero unless the aggregate skip rate across all templates (fetched from the -workload URL) is at least this floor in (0,1]; 0 = off")
	)
	flag.Parse()

	rep := loadgen.Run(loadgen.Options{
		Addr:        *addr,
		Conns:       *conns,
		Duration:    *duration,
		Table:       *table,
		Col:         *col,
		Domain:      *domain,
		Templates:   *tmpls,
		ZipfS:       *zipfS,
		Selectivity: *sel,
		Point:       *point,
		Prepared:    *prepared,
		Seed:        *seed,
		Timeout:     *timeout,
		Timing:      *timing,

		InsertFraction: *insFrac,
		InsertBatch:    *insBatch,
		Retries:        *retries,
	})
	fmt.Println(rep)
	if *timing && rep.TimingViolations > 0 {
		fmt.Fprintf(os.Stderr, "adskip-load: %d timing breakdowns violated sanity invariants\n",
			rep.TimingViolations)
		os.Exit(1)
	}
	if *timing && rep.TimedRequests == 0 && rep.Requests > 0 {
		fmt.Fprintln(os.Stderr, "adskip-load: -timing was set but the server returned no breakdowns (old server?)")
		os.Exit(1)
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "adskip-load: %d of %d requests failed\n",
			rep.Errors, rep.Requests+rep.Errors)
		os.Exit(1)
	}
	if rep.Requests == 0 {
		fmt.Fprintln(os.Stderr, "adskip-load: no requests completed")
		os.Exit(1)
	}
	if *health != "" {
		if err := assertHealth(*health); err != nil {
			fmt.Fprintf(os.Stderr, "adskip-load: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("health: ok")
	}
	if *wlURL != "" {
		if err := printWorkload(*wlURL); err != nil {
			fmt.Fprintf(os.Stderr, "adskip-load: %v\n", err)
			os.Exit(1)
		}
	}
	if *skipMin != 0 {
		if err := assertSkipRate(*wlURL, *skipMin); err != nil {
			fmt.Fprintf(os.Stderr, "adskip-load: %v\n", err)
			os.Exit(1)
		}
	}
}

// assertSkipRate fetches every template from a telemetry /workload
// endpoint, folds rows skipped and rows read into one end-of-run
// aggregate skip rate, and fails unless that rate clears the floor — a
// load run can then double as a pruning-quality acceptance check: the
// traffic it just generated must actually have been skipped, not merely
// answered.
func assertSkipRate(url string, min float64) error {
	if min <= 0 || min > 1 {
		return fmt.Errorf("assert-skip-rate: floor %v outside (0,1]", min)
	}
	if url == "" {
		return fmt.Errorf("assert-skip-rate: needs the telemetry /workload URL (set -workload)")
	}
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url + "?sort=time&k=0") // k=0: every template, not the top-K view
	if err != nil {
		return fmt.Errorf("assert-skip-rate: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("assert-skip-rate: %s answered %d", url, resp.StatusCode)
	}
	var snap struct {
		Templates []struct {
			RowsRead    int64 `json:"rows_read"`
			RowsSkipped int64 `json:"rows_skipped"`
		} `json:"templates"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("assert-skip-rate: decode %s: %w", url, err)
	}
	var read, skipped int64
	for _, t := range snap.Templates {
		read += t.RowsRead
		skipped += t.RowsSkipped
	}
	if read+skipped == 0 {
		return fmt.Errorf("assert-skip-rate: %s reports no scanned rows — nothing to rate", url)
	}
	rate := float64(skipped) / float64(read+skipped)
	fmt.Printf("skip rate: %.3f (%d skipped / %d candidate rows)\n", rate, skipped, read+skipped)
	if rate < min {
		return fmt.Errorf("assert-skip-rate: aggregate skip rate %.3f below floor %.3f", rate, min)
	}
	return nil
}

// printWorkload fetches a telemetry /workload endpoint and renders the
// top templates the run just produced — a quick answer to "who was
// asking?". An answering endpoint with an empty template table is an
// error: the load generator definitely sent queries, so empty means
// attribution is broken somewhere between the server and the stats
// table.
func printWorkload(url string) error {
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url + "?sort=time&k=10")
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("workload: %s answered %d", url, resp.StatusCode)
	}
	var snap struct {
		Templates []struct {
			Fingerprint string  `json:"fingerprint"`
			Calls       int64   `json:"calls"`
			P95US       float64 `json:"p95_us"`
			SkipRatio   float64 `json:"skip_ratio"`
			TotalSec    float64 `json:"total_seconds"`
		} `json:"templates"`
		TotalTemplates int   `json:"total_templates"`
		Recorded       int64 `json:"recorded_calls"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("workload: decode %s: %w", url, err)
	}
	if len(snap.Templates) == 0 {
		return fmt.Errorf("workload: %s reports no templates — queries were sent but none were attributed", url)
	}
	var total float64
	for _, t := range snap.Templates {
		total += t.TotalSec
	}
	fmt.Printf("workload: top %d of %d templates (%d calls recorded)\n",
		len(snap.Templates), snap.TotalTemplates, snap.Recorded)
	fmt.Printf("%7s %10s %7s %7s  %s\n", "calls", "p95(µs)", "skip%", "cpu%", "template")
	for _, t := range snap.Templates {
		var cpu float64
		if total > 0 {
			cpu = 100 * t.TotalSec / total
		}
		fmt.Printf("%7d %10.0f %6.1f%% %6.1f%%  %s\n",
			t.Calls, t.P95US, 100*t.SkipRatio, cpu, t.Fingerprint)
	}
	return nil
}

// assertHealth probes a telemetry /health endpoint and fails unless the
// service answers 200 with overall status "ok" — so a load run can
// double as an SLO acceptance check: the traffic it just generated must
// not have left any objective burning.
func assertHealth(url string) error {
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		return fmt.Errorf("assert-health: %w", err)
	}
	defer resp.Body.Close()
	var body struct {
		Enabled bool   `json:"enabled"`
		Status  string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("assert-health: decode %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("assert-health: %s answered %d (status %q)", url, resp.StatusCode, body.Status)
	}
	if !body.Enabled {
		return fmt.Errorf("assert-health: %s has no health monitor (server started without objectives?)", url)
	}
	if body.Status != "ok" {
		return fmt.Errorf("assert-health: status %q, want ok", body.Status)
	}
	return nil
}
