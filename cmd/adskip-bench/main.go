// Command adskip-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	adskip-bench -experiment all                 # full suite, default scale
//	adskip-bench -experiment fig1 -rows 16777216 # paper-scale headline figure
//	adskip-bench -experiment tab2 -csv           # machine-readable output
//
// Each experiment prints the data series behind the corresponding figure
// or table in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"adskip/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (fig1..fig7, tab1..tab3, abl1..abl2) or 'all'")
		rows       = flag.Int("rows", 1<<21, "rows in the measured column")
		queries    = flag.Int("queries", 512, "queries per measured stream")
		seed       = flag.Int64("seed", 42, "base RNG seed")
		staticZone = flag.Int("static-zone", 4096, "zone size for the static baseline")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list       = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, ex := range harness.Experiments() {
			fmt.Printf("%-6s %s\n", ex.ID, ex.Title)
		}
		return
	}

	cfg := harness.Config{
		Rows: *rows, Queries: *queries, Seed: *seed, StaticZoneRows: *staticZone,
	}

	var selected []harness.Experiment
	if *experiment == "all" {
		selected = harness.Experiments()
	} else {
		ex, ok := harness.Lookup(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "adskip-bench: unknown experiment %q (try -list)\n", *experiment)
			os.Exit(2)
		}
		selected = []harness.Experiment{ex}
	}

	for _, ex := range selected {
		tbl, err := ex.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adskip-bench: %s: %v\n", ex.ID, err)
			os.Exit(1)
		}
		if *csv {
			tbl.CSV(os.Stdout)
		} else {
			tbl.Fprint(os.Stdout)
		}
	}
}
