// Command adskip-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	adskip-bench -experiment all                 # full suite, default scale
//	adskip-bench -experiment fig1 -rows 16777216 # paper-scale headline figure
//	adskip-bench -experiment tab2 -csv           # machine-readable output
//	adskip-bench -experiment fig1 -json auto     # plus BENCH_<timestamp>.json summary
//	adskip-bench -baseline BENCH_BASELINE.json   # CI perf gate: exit 1 on regression
//
// Each experiment prints the data series behind the corresponding figure
// or table in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"adskip/internal/faultinject"
	"adskip/internal/harness"
	"adskip/internal/obs"
	"adskip/internal/telemetry"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (fig1..fig7, tab1..tab3, abl1..abl2) or 'all'")
		rows       = flag.Int("rows", 1<<21, "rows in the measured column")
		queries    = flag.Int("queries", 512, "queries per measured stream")
		seed       = flag.Int64("seed", 42, "base RNG seed")
		staticZone = flag.Int("static-zone", 4096, "zone size for the static baseline")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		metrics    = flag.String("metrics", "", "after the run, dump cumulative engine metrics to stderr: prom|json")
		chaos      = flag.Bool("chaos", false, "run with deterministic fault injection (worker panics + invariant flips); results must still be correct")
		chaosSeed  = flag.Int64("chaos-seed", 1, "RNG seed for -chaos probability draws")
		serve      = flag.String("serve", "", "serve live telemetry (metrics, traces, pprof) on this address while the suite runs, e.g. 127.0.0.1:0")
		addr       = flag.String("addr", "", "replay the figure workload mixes against a remote adskip-server at this address instead of running local experiments")
		jsonOut    = flag.String("json", "", `also write a machine-readable run summary to this path ("auto" = BENCH_<timestamp>.json)`)
		baseline   = flag.String("baseline", "", "perf-gate mode: re-run the gate stream at this summary's recorded scale and exit 1 on regression beyond -gate-tolerance")
		gateTol    = flag.Float64("gate-tolerance", 0.15, "relative regression tolerance for -baseline (0.15 = 15%)")
		ingest     = flag.Bool("ingest", false, "also run the ingest benchmark (volatile vs WAL group commit vs WAL no-sync) and report the durability slowdown")
		ingestRows = flag.Int("ingest-rows", 1<<18, "rows per ingest leg (with -ingest)")
	)
	flag.Parse()

	if *baseline != "" {
		os.Exit(runGate(*baseline, *gateTol))
	}

	sum := &benchSummary{
		Experiment: *experiment, Rows: *rows, Queries: *queries,
		Seed: *seed, StaticZone: *staticZone, Chaos: *chaos, RemoteAddr: *addr,
	}

	if *addr != "" {
		tbl, err := runRemote(*addr, *queries, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adskip-bench: remote: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			tbl.CSV(os.Stdout)
		} else {
			tbl.Fprint(os.Stdout)
		}
		if *jsonOut != "" {
			sum.Tables = []*harness.Table{tbl}
			if err := writeSummary(*jsonOut, sum, nil); err != nil {
				fmt.Fprintf(os.Stderr, "adskip-bench: json summary: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *chaos {
		// Sparse, seed-deterministic faults: the suite should survive and
		// produce correct numbers (quarantined columns fall back to full
		// scans, so timings may degrade — that is the point of the mode).
		restore := faultinject.Activate(faultinject.New(*chaosSeed).
			Set(faultinject.WorkerPanic, faultinject.Rule{Prob: 0.001}).
			Set(faultinject.InvariantFlip, faultinject.Rule{Prob: 0.0005}))
		defer restore()
		fmt.Fprintf(os.Stderr, "adskip-bench: chaos mode on (seed %d)\n", *chaosSeed)
	}

	if *list {
		for _, ex := range harness.Experiments() {
			fmt.Printf("%-6s %s\n", ex.ID, ex.Title)
		}
		return
	}

	var reg *obs.Registry
	switch *metrics {
	case "":
	case "prom", "json":
		reg = obs.NewRegistry()
	default:
		fmt.Fprintf(os.Stderr, "adskip-bench: unknown -metrics format %q (want prom or json)\n", *metrics)
		os.Exit(2)
	}
	if *jsonOut != "" && reg == nil {
		// The JSON summary embeds the cumulative engine metrics (skip
		// ratios, rows/bytes scanned) even when -metrics is off.
		reg = obs.NewRegistry()
	}

	cfg := harness.Config{
		Rows: *rows, Queries: *queries, Seed: *seed, StaticZoneRows: *staticZone,
		Metrics: reg,
	}

	if *serve != "" {
		// A telemetry endpoint needs a registry and a trace ring; share
		// them with every engine the experiments build so /metrics and
		// /traces reflect the suite live.
		if cfg.Metrics == nil {
			cfg.Metrics = obs.NewRegistry()
		}
		cfg.Traces = obs.NewTraceRing(0)
		srv, err := telemetry.Start(telemetry.Options{Addr: *serve}, telemetry.Source{
			Registry: cfg.Metrics,
			Traces:   cfg.Traces,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "adskip-bench: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "adskip-bench: telemetry at %s\n", srv.URL())
	}

	var selected []harness.Experiment
	if *experiment == "all" {
		selected = harness.Experiments()
	} else {
		ex, ok := harness.Lookup(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "adskip-bench: unknown experiment %q (try -list)\n", *experiment)
			os.Exit(2)
		}
		selected = []harness.Experiment{ex}
	}

	for _, ex := range selected {
		tbl, err := ex.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adskip-bench: %s: %v\n", ex.ID, err)
			os.Exit(1)
		}
		if *csv {
			tbl.CSV(os.Stdout)
		} else {
			tbl.Fprint(os.Stdout)
		}
		sum.Tables = append(sum.Tables, tbl)
	}

	if *metrics != "" {
		var err error
		if *metrics == "json" {
			err = reg.WriteJSON(os.Stderr)
		} else {
			err = reg.WritePrometheus(os.Stderr)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "adskip-bench: metrics dump: %v\n", err)
			os.Exit(1)
		}
	}

	if *ingest {
		ist, err := harness.RunIngest(harness.IngestConfig{Rows: *ingestRows, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "adskip-bench: ingest: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(ist)
		sum.Ingest = &ist
	}

	if *jsonOut != "" {
		// Every JSON summary carries the gate stream's stats, so any
		// summary can later serve as a perf-gate baseline.
		g, err := harness.GateRun(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adskip-bench: gate stream: %v\n", err)
			os.Exit(1)
		}
		sum.Gate = &g
		if err := writeSummary(*jsonOut, sum, reg); err != nil {
			fmt.Fprintf(os.Stderr, "adskip-bench: json summary: %v\n", err)
			os.Exit(1)
		}
	}
}

// runGate is -baseline mode: load the committed baseline, re-run the
// gate stream at its recorded scale and seed, and compare. Returns the
// process exit code (0 pass, 1 regression or error).
func runGate(path string, tolerance float64) int {
	base, err := readBaseline(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adskip-bench: baseline: %v\n", err)
		return 1
	}
	cur, err := harness.GateRun(harness.Config{
		Rows: base.Gate.Rows, Queries: base.Gate.Queries,
		Seed: base.Gate.Seed, StaticZoneRows: base.Gate.StaticZone,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "adskip-bench: gate stream: %v\n", err)
		return 1
	}
	fmt.Printf("perf gate vs %s (rows %d, queries %d, seed %d, tolerance %.0f%%)\n",
		path, base.Gate.Rows, base.Gate.Queries, base.Gate.Seed, 100*tolerance)
	fmt.Printf("  %-12s %12s %12s\n", "metric", "baseline", "current")
	fmt.Printf("  %-12s %11.0fns %11.0fns\n", "p50", base.Gate.P50NS, cur.P50NS)
	fmt.Printf("  %-12s %11.0fns %11.0fns\n", "p95", base.Gate.P95NS, cur.P95NS)
	fmt.Printf("  %-12s %9.0f qps %9.0f qps\n", "throughput", base.Gate.ThroughputQPS, cur.ThroughputQPS)
	fmt.Printf("  %-12s %12.3f %12.3f\n", "skip ratio", base.Gate.SkipRatio, cur.SkipRatio)
	violations, skip := harness.CompareGate(*base.Gate, cur, tolerance)
	if skip != "" {
		// Not a pass: the run was too short to judge. Exit 0 so tiny local
		// runs don't fail, but say so unambiguously — CI gates at a scale
		// where this never triggers.
		fmt.Printf("perf gate: SKIPPED: %s\n", skip)
		return 0
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Printf("REGRESSION: %s\n", v)
		}
		return 1
	}
	fmt.Println("perf gate: PASS")
	return 0
}
