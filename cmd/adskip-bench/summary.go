package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"adskip/internal/harness"
	"adskip/internal/obs"
)

// benchSummary is the -json run summary: enough context to compare runs
// (what was measured, at what scale, from which seed) plus every result
// table and, when a registry was attached, the cumulative engine metrics
// (skip ratios, rows and bytes scanned, adaptation counters).
type benchSummary struct {
	Timestamp  string `json:"timestamp"` // UTC, RFC 3339
	Experiment string `json:"experiment"`
	Rows       int    `json:"rows"`
	Queries    int    `json:"queries"`
	Seed       int64  `json:"seed"`
	StaticZone int    `json:"static_zone_rows"`
	Chaos      bool   `json:"chaos,omitempty"`
	RemoteAddr string `json:"remote_addr,omitempty"`

	Tables  []*harness.Table `json:"tables"`
	Metrics json.RawMessage  `json:"metrics,omitempty"`
	// Gate is the perf-regression gate stream's structured stats; a
	// summary carrying one can serve as the committed CI baseline for
	// `adskip-bench -baseline <file>` (see scripts/perf_gate.sh).
	Gate *harness.GateStats `json:"gate,omitempty"`
	// Ingest is the durability-cost measurement (with -ingest): volatile
	// vs WAL-group-commit vs WAL-no-sync throughput and fsync
	// amortization. The durable path is expected within 2x of volatile.
	Ingest *harness.IngestStats `json:"ingest,omitempty"`
}

// readBaseline loads a previously written summary to gate against.
func readBaseline(path string) (*benchSummary, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sum benchSummary
	if err := json.Unmarshal(raw, &sum); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if sum.Gate == nil {
		return nil, fmt.Errorf("%s carries no gate stats (regenerate it with -json)", path)
	}
	return &sum, nil
}

// writeSummary marshals the summary to path; "auto" derives a
// BENCH_<timestamp>.json name in the working directory. The written path
// is reported on stderr so CI can pick the artifact up.
func writeSummary(path string, sum *benchSummary, reg *obs.Registry) error {
	sum.Timestamp = time.Now().UTC().Format(time.RFC3339)
	if reg != nil {
		var buf []byte
		w := &appendWriter{buf: &buf}
		if err := reg.WriteJSON(w); err != nil {
			return fmt.Errorf("render metrics: %w", err)
		}
		sum.Metrics = json.RawMessage(buf)
	}
	if path == "auto" {
		path = "BENCH_" + time.Now().UTC().Format("20060102T150405Z") + ".json"
	}
	out, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "adskip-bench: wrote %s\n", path)
	return nil
}

// appendWriter adapts a byte slice to io.Writer for WriteJSON.
type appendWriter struct{ buf *[]byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}
