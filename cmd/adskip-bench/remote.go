package main

import (
	"fmt"
	"sort"
	"time"

	"adskip/internal/client"
	"adskip/internal/harness"
	"adskip/internal/workload"
)

// runRemote replays the figure workload mixes against a running
// adskip-server instead of an in-process engine, so the serving stack
// (protocol, sessions, statement cache) is measured end to end. One
// connection, closed loop: the numbers are per-request round-trip
// latencies as a client sees them.
//
// The client asks for server-side breakdowns (proto.Request.WantTiming)
// so each mix also reports how much of the round trip was server
// execution and what fraction of rows skipping eliminated. Against an
// older server that ignores the timing fields those columns degrade to
// "-" and the round-trip numbers are unaffected.
func runRemote(addr string, queries int, seed int64) (*harness.Table, error) {
	c, err := client.Dial(addr, client.Options{Timeout: 30 * time.Second, Timing: true})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	// The served dataset is the adskip-gen shape: table "data", column v
	// over a domain equal to the row count.
	probe, err := c.Query("SELECT COUNT(*) FROM data")
	if err != nil {
		return nil, fmt.Errorf("probe row count: %w", err)
	}
	domain := int64(probe.Count)
	if domain == 0 {
		return nil, fmt.Errorf("remote table \"data\" is empty")
	}

	tbl := &harness.Table{
		ID:     "remote",
		Title:  fmt.Sprintf("workload replay against %s (%d rows, %d queries per mix)", addr, domain, queries),
		Header: []string{"workload", "queries", "qps", "p50_ms", "p95_ms", "p99_ms", "max_ms", "server_p50_ms", "server_p95_ms", "skip_pct"},
		Notes: []string{
			"single closed-loop connection; latency is client-observed round-trip",
			"server_* and skip_pct come from the server's timing breakdown ('-' if the server predates it)",
		},
	}
	kinds := []workload.QueryKind{
		workload.UniformRange, workload.HotRange, workload.DriftingHot, workload.Point,
	}
	for _, kind := range kinds {
		gen := workload.NewGen(workload.QuerySpec{Kind: kind, Domain: domain, Seed: seed})
		lats := make([]time.Duration, 0, queries)
		server := make([]time.Duration, 0, queries)
		var rowsSkipped, rowsTotal int64
		t0 := time.Now()
		for i := 0; i < queries; i++ {
			r := gen.Next()
			q := fmt.Sprintf("SELECT COUNT(*) FROM data WHERE v BETWEEN %d AND %d", r.Lo, r.Hi)
			qt0 := time.Now()
			res, err := c.QueryTraced(q, fmt.Sprintf("bench-%s-%d", kind, i))
			if err != nil {
				return nil, fmt.Errorf("%s query %d: %w", kind, i, err)
			}
			lats = append(lats, time.Since(qt0))
			if tm := res.Timing; tm != nil {
				server = append(server, time.Duration(tm.TotalUS)*time.Microsecond)
				rowsSkipped += tm.RowsSkipped
				rowsTotal += tm.RowsSkipped + int64(res.Stats.RowsScanned)
			}
		}
		elapsed := time.Since(t0)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		sort.Slice(server, func(i, j int) bool { return server[i] < server[j] })
		ms := func(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond)) }
		serverP50, serverP95, skipPct := "-", "-", "-"
		if len(server) > 0 {
			serverP50 = ms(pct(server, 0.50))
			serverP95 = ms(pct(server, 0.95))
		}
		if rowsTotal > 0 {
			skipPct = fmt.Sprintf("%.1f", 100*float64(rowsSkipped)/float64(rowsTotal))
		}
		tbl.Rows = append(tbl.Rows, []string{
			kind.String(),
			fmt.Sprintf("%d", queries),
			fmt.Sprintf("%.0f", float64(queries)/elapsed.Seconds()),
			ms(pct(lats, 0.50)), ms(pct(lats, 0.95)), ms(pct(lats, 0.99)),
			ms(lats[len(lats)-1]),
			serverP50, serverP95, skipPct,
		})
	}
	return tbl, nil
}

// pct returns the q-th percentile of sorted latencies (exact: the full
// sample is retained).
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
