package adskip

import (
	"math/rand"
	"testing"

	"adskip/internal/adaptive"
	"adskip/internal/engine"
	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/workload"
)

func TestConvergenceOnFineClusters(t *testing.T) {
	const rows = 2_000_000
	vals := workload.Generate(workload.DataSpec{N: rows, Dist: workload.Clustered, Domain: rows, Clusters: 2048, Seed: 5})
	tbl := table.MustNew("t", table.Schema{{Name: "key", Type: storage.Int64}})
	col, _ := tbl.Column("key")
	for _, v := range vals {
		col.AppendInt(v)
	}
	e := engine.New(tbl, engine.Options{Policy: engine.PolicyAdaptive,
		Adaptive: adaptive.Config{InitialZoneRows: rows / 256, MinZoneRows: 256}})
	e.EnableSkipping("key")
	rng := rand.New(rand.NewSource(2))
	q := func() engine.Query {
		lo := int64(rows/4) + rng.Int63n(rows/10)
		return engine.Query{
			Where: expr.And(expr.MustPred("key", expr.Between, storage.IntValue(lo), storage.IntValue(lo+rows/500))),
			Aggs:  []engine.Agg{{Kind: engine.CountStar}},
		}
	}
	for i := 0; i < 800; i++ {
		e.Query(q())
	}
	z := e.Skipper("key").(*adaptive.Zonemap)
	if !z.Enabled() {
		t.Fatal("arbitration disabled skipping on a skippable workload")
	}
	var scanned int
	for i := 0; i < 50; i++ {
		res, err := e.Query(q())
		if err != nil {
			t.Fatal(err)
		}
		scanned += res.Stats.RowsScanned
	}
	scanned /= 50
	// A hot-range workload over 2048 narrow clusters must converge well
	// below a 35% scan fraction (the pre-crack-alignment behavior scanned
	// ~45% of the table forever; see learn.go planSplit coalescing).
	if frac := float64(scanned) / rows; frac > 0.35 {
		t.Fatalf("steady-state scan fraction %.0f%% (scanned %d rows/query, %d zones) — convergence regressed",
			frac*100, scanned, z.NumZones())
	}
}
