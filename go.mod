module adskip

go 1.22
